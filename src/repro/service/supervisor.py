"""Supervised worker-subprocess pool for the analysis service.

The service's job bodies run untrusted binaries through the analysis
pipeline. On a thread pool (the historical default) none of the
isolation machinery actually bites: the ``SIGALRM`` cell watchdog only
arms on a main thread, ``RLIMIT_AS`` is per-process, and a job that
SIGKILLs or wedges its thread takes the whole server with it. This
module is the executor that makes the guarantees real:

- each worker is a **child process**; tasks run on the child's *main*
  thread, so :func:`repro.eval.isolation.deadline` arms for real, and
  an optional ``RLIMIT_AS`` ceiling turns runaway allocations into an
  in-band :class:`MemoryError`;
- each worker slot is driven by a **supervisor thread** in the parent
  that enforces a wall-clock **backstop** per task (budget + grace) and
  a **heartbeat** (a frozen or SIGSTOPped child stops beating), killing
  and respawning the worker when either trips;
- a lost worker fails the in-flight task with
  :class:`~repro.errors.WorkerLostError` — *transient* by taxonomy, so
  the job manager retries on the fresh worker and escalates to
  poison-quarantine after repeated losses;
- respawns after consecutive crashes back off exponentially
  (**crash-loop backoff**), so a poisoned queue cannot turn the parent
  into a fork bomb.

The pool is a ``concurrent.futures.Executor``: it drops into
``JobManager(executor=...)`` unchanged. The extra
:meth:`SupervisedExecutor.submit_task` entry point carries a per-task
wall-clock *budget* so the backstop can track the job's real deadline
instead of a single global worst case.

Task callables and their arguments must be picklable (module-level
functions, plain-data payloads) — the same contract as any
``multiprocessing`` pool.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from concurrent.futures import Executor, Future
from dataclasses import dataclass

import multiprocessing

from repro import faults, obs
from repro.errors import WorkerLostError
from repro.obs.log import warn

#: ``WorkerLostError.reason`` values this pool produces.
REASON_CRASH = "crash"
REASON_DEADLINE = "deadline"
REASON_UNRESPONSIVE = "unresponsive"
REASON_SHUTDOWN = "shutdown"

#: Default grace (seconds) beyond a task's declared budget before the
#: supervisor declares the worker wedged and SIGKILLs it. For tasks
#: with no budget the backstop alone is the ceiling.
DEFAULT_BACKSTOP = 30.0

#: Child → parent heartbeat cadence and the silence that counts as a
#: frozen worker. Heartbeats come from a daemon thread in the child, so
#: they keep flowing while the main thread computes (the GIL switches);
#: only a truly stopped process — SIGSTOP, a C-level hang holding the
#: GIL, scheduler starvation — goes silent.
DEFAULT_HEARTBEAT_INTERVAL = 1.0
DEFAULT_HEARTBEAT_TIMEOUT = 15.0

#: Crash-loop backoff: ``base * 2**(consecutive-1)`` capped at ``max``.
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_MAX = 30.0

#: Supervisor poll tick (seconds) while waiting on a worker reply.
_POLL_TICK = 0.05

#: Seconds to wait for a SIGKILLed child to be reaped.
_REAP_TIMEOUT = 5.0

_STOP = object()


@dataclass
class _Task:
    fn: object
    args: tuple
    kwargs: dict
    future: Future
    #: Wall-clock seconds the task is *expected* to need (the job's
    #: timeout budget); ``None`` means unknown.
    budget: float | None = None


def _drain_counters() -> dict[str, float]:
    recorder = obs.recorder()
    drain = getattr(recorder, "drain", None)
    if drain is None:
        return {}
    try:
        return dict(drain().get("counters", {}))
    except Exception:  # noqa: BLE001 — counters are never fatal
        return {}


def _apply_rss_limit(max_rss_mb: int) -> None:
    """Best-effort address-space ceiling for the current process."""
    try:
        import resource
    except ImportError:  # pragma: no cover — non-POSIX
        return
    limit = int(max_rss_mb) * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover — platform quirk
        pass


def _worker_main(conn, max_rss_mb: int | None,
                 heartbeat_interval: float) -> None:
    """Child-process loop: recv task, run it on the main thread, reply.

    Replies are ``(kind, payload, counters)`` tuples: ``"hb"`` for a
    heartbeat, ``"ok"`` with the result, ``"err"`` with the exception.
    ``counters`` ships the child's obs counters back to the parent so
    ``/v1/metrics`` aggregates pipeline counters across workers.
    """
    obs.set_recorder(obs.CounterRecorder())
    # Fault-plan ordinals are counted per process; a fresh worker
    # starts at zero so plans stay reproducible across respawns.
    faults.reset_counts()
    if max_rss_mb is not None:
        _apply_rss_limit(max_rss_mb)

    # ``Connection.send`` is not thread-safe; the heartbeat thread and
    # the task loop share one lock.
    send_lock = threading.Lock()
    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb", None, None))
            except (OSError, ValueError, BrokenPipeError):
                return

    if heartbeat_interval and heartbeat_interval > 0:
        threading.Thread(target=_heartbeat, daemon=True,
                         name="repro-heartbeat").start()

    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            fn, args, kwargs = msg
            try:
                result = fn(*args, **kwargs)
                reply = ("ok", result, _drain_counters())
            except BaseException as exc:  # noqa: BLE001 — shipped back
                reply = ("err", exc, _drain_counters())
            try:
                with send_lock:
                    conn.send(reply)
            except (OSError, BrokenPipeError):
                break
            except (ValueError, TypeError, AttributeError) as exc:
                # The result/exception did not pickle; degrade to a
                # string error so the parent still gets an answer.
                fallback = ("err",
                            RuntimeError(f"unpicklable worker reply: "
                                         f"{type(exc).__name__}: {exc}"),
                            {})
                try:
                    with send_lock:
                        conn.send(fallback)
                except (OSError, ValueError, BrokenPipeError):
                    break
    finally:
        stop.set()


class _WorkerSlot:
    """One supervised worker: a child process plus its parent-side thread."""

    def __init__(self, pool: "SupervisedExecutor", index: int) -> None:
        self._pool = pool
        self.index = index
        self._proc = None
        self._conn = None
        self.consecutive_losses = 0
        self.thread = threading.Thread(
            target=self._run, daemon=True,
            name=f"repro-supervisor-{index}")
        self.thread.start()

    # -- supervisor loop -----------------------------------------------------

    def _run(self) -> None:
        while True:
            task = self._pool._tasks.get()
            if task is _STOP:
                break
            if not task.future.set_running_or_notify_cancel():
                continue
            try:
                self._run_task(task)
            except BaseException as exc:  # noqa: BLE001 — never die silent
                if not task.future.done():
                    task.future.set_exception(exc)
        self._kill_worker()

    def _run_task(self, task: _Task) -> None:
        try:
            self._ensure_worker()
        except Exception as exc:  # noqa: BLE001 — spawn failed
            if self._pool._shutdown.is_set():
                task.future.set_exception(WorkerLostError(
                    f"worker {self.index} not spawned: pool shutdown",
                    reason=REASON_SHUTDOWN))
                return
            self._record_loss(REASON_CRASH)
            task.future.set_exception(WorkerLostError(
                f"worker {self.index} could not be spawned: {exc}",
                reason=REASON_CRASH))
            return
        try:
            self._conn.send((task.fn, task.args, task.kwargs))
        except (OSError, ValueError, BrokenPipeError) as exc:
            self._kill_worker()
            self._record_loss(REASON_CRASH)
            task.future.set_exception(WorkerLostError(
                f"dispatch to worker {self.index} failed: {exc}",
                reason=REASON_CRASH))
            return

        pool = self._pool
        started = time.monotonic()
        deadline = None
        if pool.backstop is not None:
            deadline = started + (task.budget or 0.0) + pool.backstop
        last_beat = started

        while True:
            try:
                ready = self._conn.poll(_POLL_TICK)
            except (OSError, ValueError):
                self._lose_task(task, REASON_CRASH, started)
                return
            if ready:
                try:
                    kind, payload, counters = self._conn.recv()
                except (EOFError, OSError):
                    self._lose_task(task, REASON_CRASH, started)
                    return
                last_beat = time.monotonic()
                if kind == "hb":
                    continue
                if counters:
                    for name, value in counters.items():
                        obs.add(name, value)
                self.consecutive_losses = 0
                if kind == "ok":
                    pool._bump("tasks_completed")
                    task.future.set_result(payload)
                else:
                    pool._bump("tasks_raised")
                    error = (payload if isinstance(payload, BaseException)
                             else RuntimeError(str(payload)))
                    task.future.set_exception(error)
                return

            now = time.monotonic()
            if pool._shutdown.is_set():
                self._kill_worker()
                task.future.set_exception(WorkerLostError(
                    f"worker {self.index} torn down mid-task "
                    f"(pool shutdown)", reason=REASON_SHUTDOWN))
                return
            if self._proc is not None and not self._proc.is_alive():
                # Child died without an EOF reaching us yet.
                self._lose_task(task, REASON_CRASH, started)
                return
            if deadline is not None and now > deadline:
                pool._bump("backstop_kills")
                self._lose_task(task, REASON_DEADLINE, started)
                return
            if (pool.heartbeat_timeout is not None
                    and now - last_beat > pool.heartbeat_timeout):
                pool._bump("unresponsive_kills")
                self._lose_task(task, REASON_UNRESPONSIVE, started)
                return

    def _lose_task(self, task: _Task, reason: str, started: float) -> None:
        proc = self._proc
        exitcode = None
        if proc is not None:
            # A freshly-dead child has no exitcode until it is reaped.
            proc.join(timeout=0.2)
            exitcode = proc.exitcode
        self._kill_worker()
        self._record_loss(reason)
        elapsed = time.monotonic() - started
        task.future.set_exception(WorkerLostError(
            f"worker {self.index} lost after {elapsed:.1f}s "
            f"(reason: {reason}, exitcode: {exitcode})",
            reason=reason, exitcode=exitcode))

    # -- worker lifecycle ----------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            return
        self._kill_worker()
        pool = self._pool
        if self.consecutive_losses > 0:
            delay = min(
                pool.backoff_base * 2.0 ** (self.consecutive_losses - 1),
                pool.backoff_max)
            if delay > 0:
                pool._bump("backoff_seconds", delay)
                obs.add("supervisor.backoff_seconds", delay)
                # Interruptible: shutdown must not wait out the backoff.
                pool._shutdown.wait(delay)
        if pool._shutdown.is_set():
            raise RuntimeError("pool is shut down")
        parent_conn, child_conn = pool._ctx.Pipe(duplex=True)
        proc = pool._ctx.Process(
            target=_worker_main,
            args=(child_conn, pool.max_rss_mb, pool.heartbeat_interval),
            daemon=True,
            name=f"repro-worker-{self.index}",
        )
        proc.start()
        child_conn.close()
        self._proc = proc
        self._conn = parent_conn
        pool._bump("spawns")
        if self.consecutive_losses > 0:
            pool._bump("respawns")
        obs.add("supervisor.worker_spawns", 1)

    def _kill_worker(self) -> None:
        proc, conn = self._proc, self._conn
        self._proc = self._conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            if proc.is_alive():
                proc.kill()
            proc.join(_REAP_TIMEOUT)

    def _record_loss(self, reason: str) -> None:
        self.consecutive_losses += 1
        self._pool._bump("losses")
        obs.add("supervisor.worker_losses", 1)
        obs.add(f"supervisor.worker_losses.{reason}", 1)
        warn("supervisor.worker_lost_log",
             f"supervised worker {self.index} lost (reason: {reason}, "
             f"consecutive: {self.consecutive_losses}); respawning with "
             f"backoff")


class SupervisedExecutor(Executor):
    """A ``concurrent.futures`` pool of supervised worker subprocesses.

    Parameters
    ----------
    max_workers:
        Worker slots (child processes), each driven by one parent-side
        supervisor thread.
    backstop:
        Grace seconds beyond a task's declared budget before the worker
        is declared wedged and killed; the whole ceiling for tasks with
        no budget. ``None`` disables deadline enforcement entirely.
    heartbeat_interval / heartbeat_timeout:
        Child heartbeat cadence, and the silence that counts as a
        frozen worker (``None`` or a non-positive interval disables
        heartbeat supervision).
    backoff_base / backoff_max:
        Crash-loop respawn backoff: ``base * 2**(n-1)`` seconds after
        the *n*-th consecutive loss, capped at ``max``.
    max_rss_mb:
        Per-worker ``RLIMIT_AS`` ceiling (runaway allocations become
        ``MemoryError`` inside the worker — a *permanent* failure).
    mp_context:
        ``multiprocessing`` context; defaults to ``fork`` where
        available (workers inherit the loaded pipeline for free).
    """

    #: Duck-typing marker the job manager checks instead of isinstance.
    process_isolated = True

    def __init__(
        self,
        max_workers: int = 2,
        *,
        backstop: float | None = DEFAULT_BACKSTOP,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_max: float = DEFAULT_BACKOFF_MAX,
        max_rss_mb: int | None = None,
        mp_context=None,
    ) -> None:
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
        self._ctx = mp_context
        self.backstop = backstop
        self.heartbeat_interval = heartbeat_interval
        if heartbeat_interval is None or heartbeat_interval <= 0:
            heartbeat_timeout = None
        self.heartbeat_timeout = heartbeat_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_rss_mb = max_rss_mb
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._shutdown = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats: dict[str, float] = collections.defaultdict(float)
        self._slots = [
            _WorkerSlot(self, i) for i in range(max(1, max_workers))
        ]

    # -- submission ----------------------------------------------------------

    def submit(self, fn, /, *args, **kwargs) -> Future:
        return self.submit_task(fn, *args, **kwargs)

    def submit_task(self, fn, /, *args,
                    budget: float | None = None, **kwargs) -> Future:
        """Like :meth:`submit`, with a per-task wall-clock budget.

        The supervisor's kill deadline for this task is
        ``budget + backstop`` (just ``backstop`` when no budget is
        declared).
        """
        if self._shutdown.is_set():
            raise RuntimeError("cannot submit to a shut-down "
                               "SupervisedExecutor")
        future: Future = Future()
        self._tasks.put(_Task(fn, args, kwargs, future, budget))
        return future

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, wait: bool = True, *,
                 cancel_futures: bool = False) -> None:
        """Idempotent teardown: kill children, stop supervisor threads.

        In-flight tasks fail with ``WorkerLostError(reason="shutdown")``
        — their jobs were journaled at submit, so the next server on
        the run directory re-runs them.
        """
        self._shutdown.set()
        if cancel_futures:
            while True:
                try:
                    task = self._tasks.get_nowait()
                except queue.Empty:
                    break
                if task is not _STOP:
                    task.future.cancel()
        for _ in self._slots:
            self._tasks.put(_STOP)
        if wait:
            for slot in self._slots:
                slot.thread.join(timeout=_REAP_TIMEOUT + 5.0)
        for slot in self._slots:
            slot._kill_worker()

    # -- introspection -------------------------------------------------------

    def _bump(self, name: str, value: float = 1) -> None:
        with self._stats_lock:
            self._stats[name] += value

    def stats(self) -> dict:
        """Pool counters plus live worker census (for ``/v1/metrics``)."""
        with self._stats_lock:
            doc = {
                "workers": len(self._slots),
                "workers_alive": sum(
                    1 for s in self._slots
                    if s._proc is not None and s._proc.is_alive()),
                "spawns": 0, "respawns": 0, "losses": 0,
                "backstop_kills": 0, "unresponsive_kills": 0,
                "tasks_completed": 0, "tasks_raised": 0,
                "backoff_seconds": 0.0,
            }
            doc.update(self._stats)
        return doc
