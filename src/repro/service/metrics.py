"""Introspection documents: ``/v1/healthz`` and ``/v1/metrics``.

The metrics endpoint is backed by :mod:`repro.obs` — the serve CLI
installs a :class:`~repro.obs.recorder.CounterRecorder`, so every
counter the analysis pipeline already emits (cache hits, decode stats,
shm traffic, ``service.*`` events) shows up here without any dedicated
plumbing, and without the unbounded span growth a ``TraceRecorder``
would suffer on a long-lived process. Gauges that are cheap to read
live (queue depth, job states) come straight from the manager.
"""

from __future__ import annotations

import time

from repro import __version__, obs
from repro.service.jobs import JobManager


def health_doc(manager: JobManager, started_at: float) -> dict:
    """The liveness document: identity plus a coarse job census.

    ``status`` stays ``"ok"`` whenever the process is serving at all
    (liveness); the manager's health state machine is surfaced
    separately as ``health``/``health_reason`` so probes can
    distinguish "up but read-only" from "up and writable".
    """
    return {
        "status": "ok",
        "health": manager.health,
        "health_reason": manager.health_reason,
        "isolation": manager.isolation,
        "version": __version__,
        "run_dir": str(manager.run_dir),
        "resumed": manager.resumed,
        "uptime_seconds": time.time() - started_at,
        "queue_depth": manager.queue_depth(),
        "jobs": manager.status_counts(),
    }


def metrics_doc(manager: JobManager, started_at: float) -> dict:
    """Counters (from the active obs recorder) plus service gauges."""
    recorder = obs.recorder()
    counters = dict(getattr(recorder, "counters", {}))
    doc = {
        "counters": counters,
        "service": {
            **manager.stats,
            "health": manager.health,
            "isolation": manager.isolation,
            "queue_depth": manager.queue_depth(),
            "jobs": manager.status_counts(),
            "uptime_seconds": time.time() - started_at,
        },
    }
    supervisor = manager.supervisor_stats()
    if supervisor is not None:
        doc["supervisor"] = supervisor
    return doc
