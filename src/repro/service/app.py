"""The asyncio HTTP front end of the analysis service.

Stdlib only: a small hand-rolled HTTP/1.1 server over
``asyncio.start_server`` (no framework dependency is available or
wanted in this repo). One request per connection, JSON in and out,
``Connection: close`` semantics — boring on purpose; every interesting
decision lives in :mod:`repro.service.jobs`.

Routes (see ``docs/service.md`` for the full contract)::

    POST /v1/jobs             submit one binary image (the raw body)
    GET  /v1/jobs/{id}        poll job status
    GET  /v1/jobs/{id}/result fetch the per-tool entry report + receipt
    POST /v1/batch            submit many binaries (JSON, base64 images)
    GET  /v1/batch/{id}       poll a batch
    GET  /v1/healthz          liveness + run-directory identity
    GET  /v1/metrics          repro.obs counters + service gauges

Backpressure contract: a full job queue or an exhausted tenant token
bucket both answer ``429`` with a ``Retry-After`` header the client
can sleep on verbatim. A manager degraded to read-only (disk full) or
draining answers write routes with ``503`` + ``Retry-After`` while GET
routes keep serving.
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import json
import time
from urllib.parse import parse_qsl, urlsplit

from repro import obs
from repro.cache.disk import valid_namespace
from repro.errors import QueueFullError, ServiceUnavailableError
from repro.service.jobs import JOB_DONE, JOB_FAILED, DEFAULT_TENANT, JobManager
from repro.service.metrics import health_doc, metrics_doc
from repro.service.ratelimit import TenantRateLimiter

#: Submissions larger than this are refused with 413 before buffering.
DEFAULT_MAX_BODY = 64 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """Terminate request handling with a specific status + JSON body."""

    def __init__(self, status: int, message: str,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: dict,
                 headers: dict, body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    @property
    def tenant(self) -> str:
        return self.headers.get("x-tenant", DEFAULT_TENANT)


class AnalysisService:
    """Binds a :class:`JobManager` to a loopback/LAN HTTP socket."""

    def __init__(
        self,
        manager: JobManager,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        limiter: TenantRateLimiter | None = None,
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.limiter = limiter or TenantRateLimiter(rate=0)
        self.max_body = max_body
        self._server: asyncio.AbstractServer | None = None
        self.started_at = time.time()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Start the manager and the listener; returns the bound address."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        obs.add("service.starts", 1)
        return self.host, self.port

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, then drain the manager."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                status, doc, headers = self._route(request)
            except HttpError as exc:
                status = exc.status
                doc = {"error": str(exc)}
                headers = exc.headers
            except Exception as exc:  # noqa: BLE001 — last-resort 500
                obs.add("service.internal_errors", 1)
                status = 500
                doc = {"error": f"{type(exc).__name__}: {exc}"}
                headers = {}
            obs.add("service.requests", 1)
            obs.add(f"service.responses.{status}", 1)
            await self._respond(writer, status, doc, headers)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader,
    ) -> Request | None:
        try:
            line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not line:
            return None
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
            raise HttpError(400, "malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise HttpError(400, "bad Content-Length") from exc
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > self.max_body:
            raise HttpError(
                413, f"body of {length} bytes exceeds the "
                f"{self.max_body}-byte limit")
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated body") from exc
        url = urlsplit(target)
        query = dict(parse_qsl(url.query))
        return Request(method, url.path, query, headers, body)

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       doc: dict, headers: dict) -> None:
        body = json.dumps(doc, sort_keys=True).encode() + b"\n"
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in headers.items():
            head.append(f"{name}: {value}")
        try:
            writer.write("\r\n".join(head).encode("latin-1")
                         + b"\r\n\r\n" + body)
            await writer.drain()
        except (ConnectionError, OSError):
            obs.add("service.client_disconnects", 1)

    # -- routing -------------------------------------------------------------

    def _route(self, request: Request) -> tuple[int, dict, dict]:
        path = request.path.rstrip("/") or "/"
        if path == "/v1/jobs":
            self._require(request, "POST")
            return self._post_job(request)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/result"):
                self._require(request, "GET")
                return self._get_result(rest[: -len("/result")])
            self._require(request, "GET")
            return self._get_job(rest)
        if path == "/v1/batch":
            self._require(request, "POST")
            return self._post_batch(request)
        if path.startswith("/v1/batch/"):
            self._require(request, "GET")
            return self._get_batch(path[len("/v1/batch/"):])
        if path == "/v1/healthz":
            self._require(request, "GET")
            return self._healthz()
        if path == "/v1/metrics":
            self._require(request, "GET")
            return self._metrics()
        raise HttpError(404, f"no route for {request.path}")

    @staticmethod
    def _require(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.method} not allowed here",
                headers={"Allow": method})

    def _check_tenant(self, request: Request, cost: float = 1.0) -> str:
        tenant = request.tenant
        if not valid_namespace(tenant):
            raise HttpError(400, f"invalid tenant {tenant!r}")
        allowed, retry_after = self.limiter.acquire(tenant, cost)
        if not allowed:
            obs.add("service.rate_limited", 1)
            raise HttpError(
                429, f"tenant {tenant!r} rate limited",
                headers={"Retry-After": str(int(retry_after))})
        return tenant

    def _tools(self, request: Request,
               from_doc: list | None = None) -> list[str] | None:
        if from_doc is not None:
            if not isinstance(from_doc, list) or not all(
                    isinstance(t, str) for t in from_doc):
                raise HttpError(400, "tools must be a list of strings")
            return from_doc or None
        text = request.query.get("tools", "")
        tools = [t.strip() for t in text.split(",") if t.strip()]
        return tools or None

    # -- handlers ------------------------------------------------------------

    def _post_job(self, request: Request) -> tuple[int, dict, dict]:
        tenant = self._check_tenant(request)
        if not request.body:
            raise HttpError(400, "submit the binary image as the body")
        return self._submit(request.body, tenant, self._tools(request))

    def _submit(self, data: bytes, tenant: str,
                tools: list[str] | None,
                batch_id: str | None = None) -> tuple[int, dict, dict]:
        try:
            job, created = self.manager.submit(
                data, tenant=tenant, tools=tools, batch_id=batch_id)
        except QueueFullError as exc:
            raise HttpError(
                429, str(exc),
                headers={"Retry-After": str(int(exc.retry_after))},
            ) from exc
        except ServiceUnavailableError as exc:
            obs.add("service.unavailable_responses", 1)
            raise HttpError(
                503, str(exc),
                headers={"Retry-After": str(int(exc.retry_after))},
            ) from exc
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        status = 200 if job.status == JOB_DONE else 202
        return status, {"job": job.doc(), "created": created}, {}

    def _get_job(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return 200, {"job": job.doc()}, {}

    def _get_result(self, job_id: str) -> tuple[int, dict, dict]:
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        if job.status == JOB_DONE:
            return 200, {
                "job_id": job.job_id,
                "status": job.status,
                "analysis": job.analysis.to_doc(),
                "receipt": job.receipt,
            }, {}
        if job.status == JOB_FAILED:
            return 200, {
                "job_id": job.job_id,
                "status": job.status,
                "error": job.error,
            }, {}
        return 202, {"job": job.doc()}, {}

    def _post_batch(self, request: Request) -> tuple[int, dict, dict]:
        try:
            doc = json.loads(request.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"bad JSON body: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(
                doc.get("binaries"), list) or not doc["binaries"]:
            raise HttpError(
                400, 'batch body must be {"binaries": [<base64>, ...]}')
        tenant = self._check_tenant(request, cost=len(doc["binaries"]))
        images: list[bytes] = []
        for i, item in enumerate(doc["binaries"]):
            if not isinstance(item, str):
                raise HttpError(400, f"binaries[{i}] is not base64 text")
            try:
                images.append(base64.b64decode(item, validate=True))
            except (binascii.Error, ValueError) as exc:
                raise HttpError(
                    400, f"binaries[{i}] is not valid base64") from exc
        tools = self._tools(request, doc.get("tools"))
        try:
            batch, jobs = self.manager.submit_batch(
                images, tenant=tenant, tools=tools)
        except QueueFullError as exc:
            raise HttpError(
                429, str(exc),
                headers={"Retry-After": str(int(exc.retry_after))},
            ) from exc
        except ServiceUnavailableError as exc:
            obs.add("service.unavailable_responses", 1)
            raise HttpError(
                503, str(exc),
                headers={"Retry-After": str(int(exc.retry_after))},
            ) from exc
        except ValueError as exc:
            raise HttpError(400, str(exc)) from exc
        done = all(j.status == JOB_DONE for j in jobs)
        return (200 if done else 202), {
            "batch": batch.doc(),
            "jobs": [j.doc() for j in jobs],
        }, {}

    def _get_batch(self, batch_id: str) -> tuple[int, dict, dict]:
        batch = self.manager.get_batch(batch_id)
        if batch is None:
            raise HttpError(404, f"unknown batch {batch_id!r}")
        jobs = [self.manager.get(j) for j in batch.job_ids]
        return 200, {
            "batch": batch.doc(),
            "jobs": [j.doc() for j in jobs if j is not None],
        }, {}

    def _healthz(self) -> tuple[int, dict, dict]:
        return 200, health_doc(self.manager, self.started_at), {}

    def _metrics(self) -> tuple[int, dict, dict]:
        return 200, metrics_doc(self.manager, self.started_at), {}
