"""Service chaos: the job API under kills, hangs, poison, and full disks.

The evaluation and ingest chaos harnesses exercise in-process resume
paths; the service scenarios have to be harsher, because the claims
are about *processes*. Four acceptance scenarios run against real
``funseeker serve`` subprocesses:

- **service-kill-mid-job** — a thread-isolation server is SIGKILLed by
  an injected ``kill@cell.execute`` fault mid-analysis; a restart on
  the same run directory must reproduce the fault-free baseline
  results exactly (journal replay + re-execution). The kill ordinal is
  chosen so the first binary finishes (and is journaled) before the
  fault fires during the second binary's parse.
- **service-hang-backstop** — under process isolation with *no*
  per-cell timeout, an injected hang wedges a worker; the supervisor's
  ``--backstop`` must kill and respawn it, the job must complete on
  the fresh worker, and the server must never die.
- **service-poison-quarantine** — a ``kill@cell.execute#1`` fault
  murders every worker that touches the job; after
  ``--poison-threshold`` losses the job must fail permanently, its
  bytes must land in quarantine, and a restarted server must *not*
  re-enqueue it.
- **service-enospc-degrade** — an injected disk-full fault on the
  journal flips the server into degraded read-only mode (503 +
  Retry-After on writes, GETs keep serving); after ``--probe-interval``
  the next write heals it and completes normally.
"""

from __future__ import annotations

import http.client
import json
import os
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.service.receipts import RECEIPT_SCHEMA
from repro.synth.corpus import build_corpus

#: Seconds to wait for a serve subprocess to print its address.
START_TIMEOUT = 30.0
#: Seconds to wait for all submitted jobs to reach a terminal state.
COMPLETE_TIMEOUT = 120.0
#: Seconds between result polls.
POLL_INTERVAL = 0.1

_CHAOS_TOOLS = ("funseeker", "fetch")


class ServerCrashed(RuntimeError):
    """The serve subprocess died while the harness still needed it."""


@dataclass
class ServerHandle:
    """One ``funseeker serve`` subprocess plus its bound address."""

    proc: subprocess.Popen
    host: str = ""
    port: int = 0

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        timeout: float = 15.0,
    ) -> tuple[int, dict, dict]:
        """One round trip; returns (status, response headers, doc)."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                json.loads(payload.decode("utf-8")))

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM (graceful shutdown) and reap; returns the exit code."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
            try:
                return self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        return self.proc.wait()


def start_server(
    run_dir: Path,
    cache_dir: Path,
    *,
    tools: tuple[str, ...] = _CHAOS_TOOLS,
    fault_plan: str | None = None,
    start_timeout: float = START_TIMEOUT,
    extra_args: tuple[str, ...] = (),
) -> ServerHandle:
    """Spawn ``python -m repro serve`` and wait for its address line."""
    run_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_CACHE_DIR", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    src_root = Path(repro.__file__).resolve().parents[1]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(src_root) + (os.pathsep + existing
                                          if existing else ""))
    log = open(run_dir / "server.log", "ab")
    try:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--run-dir", str(run_dir),
             "--cache-dir", str(cache_dir),
             "--tools", ",".join(tools),
             "--port", "0", "--workers", "1",
             *extra_args],
            stdout=subprocess.PIPE, stderr=log, env=env,
        )
    finally:
        log.close()
    handle = ServerHandle(proc=proc)
    handle.host, handle.port = _await_address(proc, start_timeout)
    return handle


def _await_address(proc: subprocess.Popen,
                   timeout: float) -> tuple[str, int]:
    """Parse the ``serving on http://host:port`` line, without blocking."""
    deadline = time.monotonic() + timeout
    buffered = b""
    stream = proc.stdout
    assert stream is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ServerCrashed(
                f"serve subprocess exited with {proc.returncode} before "
                f"printing its address (see server.log in the run dir)")
        ready, _, _ = select.select([stream], [], [], 0.2)
        if not ready:
            continue
        chunk = os.read(stream.fileno(), 4096)
        if not chunk:
            continue
        buffered += chunk
        for line in buffered.decode("utf-8", "replace").splitlines():
            if line.startswith("serving on http://"):
                addr = line.removeprefix("serving on http://").strip()
                host, _, port = addr.rpartition(":")
                return host, int(port)
    proc.kill()
    raise ServerCrashed(
        f"serve subprocess printed no address within {timeout:.0f}s")


def _submit(handle: ServerHandle, image: bytes,
            tools: tuple[str, ...]) -> str:
    status, _headers, doc = handle.request(
        "POST", f"/v1/jobs?tools={','.join(tools)}", body=image)
    if status not in (200, 202):
        raise ServerCrashed(f"submit answered {status}: {doc}")
    return doc["job"]["job_id"]


def _await_results(
    handle: ServerHandle,
    job_ids: list[str],
    timeout: float = COMPLETE_TIMEOUT,
) -> dict[str, dict]:
    """Poll ``/result`` until every job is terminal; returns the docs."""
    deadline = time.monotonic() + timeout
    results: dict[str, dict] = {}
    while time.monotonic() < deadline:
        for job_id in job_ids:
            if job_id in results:
                continue
            status, _headers, doc = handle.request(
                "GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                results[job_id] = doc
        if len(results) == len(job_ids):
            return results
        time.sleep(POLL_INTERVAL)
    missing = [j for j in job_ids if j not in results]
    raise ServerCrashed(
        f"{len(missing)} job(s) not terminal after {timeout:.0f}s: "
        f"{missing}")


def normalize_results(results: dict[str, dict]) -> dict:
    """Strip timing/attribution noise down to the identity-bearing core."""
    doc: dict[str, dict] = {}
    for job_id, result in sorted(results.items()):
        if result.get("status") != "done":
            doc[job_id] = {"status": result.get("status"),
                           "error": result.get("error")}
            continue
        analysis = result["analysis"]
        doc[job_id] = {
            "status": "done",
            "sha256": analysis["sha256"],
            "tools": {
                name: report["functions"]
                for name, report in analysis["tools"].items()
            },
        }
    return doc


@dataclass
class ServiceScenarioResult:
    name: str
    plan: str
    ok: bool
    detail: str
    server_exit: int | None = None
    resumed_jobs: int = 0


@dataclass
class ServiceChaosReport:
    baseline_jobs: int = 0
    results: list[ServiceScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"service chaos: {len(self.results)} scenario(s) over "
            f"{self.baseline_jobs} baseline jobs"
        ]
        for r in self.results:
            status = "ok  " if r.ok else "FAIL"
            exit_note = (f" server-exit={r.server_exit}"
                         if r.server_exit is not None else "")
            lines.append(
                f"  [{status}] {r.name:<22s} plan={r.plan} "
                f"resumed={r.resumed_jobs}{exit_note}")
            if not r.ok:
                lines.append(f"         {r.detail}")
        lines.append(
            "killed server resumed to the fault-free results"
            if self.ok else "UNRECOVERED service divergence — see above")
        return "\n".join(lines)


def run_service_chaos(
    work_dir: str | Path,
    *,
    seed: int = 2022,
    tools: tuple[str, ...] = _CHAOS_TOOLS,
    binaries: int = 3,
) -> ServiceChaosReport:
    """Baseline server vs killed-and-restarted server, same submissions."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    corpus = build_corpus("tiny", seed=seed)[:binaries]
    images = [entry.stripped for entry in corpus]
    report = ServiceChaosReport()

    # -- fault-free baseline -------------------------------------------------
    handle = start_server(work_dir / "baseline" / "run",
                          work_dir / "baseline" / "cache", tools=tools)
    try:
        job_ids = [_submit(handle, image, tools) for image in images]
        baseline = normalize_results(_await_results(handle, job_ids))
    finally:
        handle.terminate()
    report.baseline_jobs = len(baseline)

    # Fire during the second binary's parse: binary 1 (1 parse +
    # len(tools) detects) completes and is journaled first. Thread
    # isolation on purpose: the kill must take the *server* down.
    ordinal = len(tools) + 2
    plan = f"kill@cell.execute#{ordinal}"
    report.results.append(_run_kill_scenario(
        work_dir / "kill", images, tools, plan, baseline))
    report.results.append(_run_hang_scenario(
        work_dir / "hang", images, tools, baseline))
    report.results.append(_run_poison_scenario(
        work_dir / "poison", images[0], tools))
    report.results.append(_run_enospc_scenario(
        work_dir / "enospc", images[0], tools))
    return report


def _run_kill_scenario(
    scenario_dir: Path,
    images: list[bytes],
    tools: tuple[str, ...],
    plan: str,
    baseline: dict,
) -> ServiceScenarioResult:
    result = ServiceScenarioResult(
        name="service-kill-mid-job", plan=plan, ok=False, detail="")
    run_dir = scenario_dir / "run"
    cache_dir = scenario_dir / "cache"

    # -- faulted server: submit everything, let the fault kill it -----------
    try:
        handle = start_server(run_dir, cache_dir, tools=tools,
                              fault_plan=plan,
                              extra_args=("--isolation", "thread"))
    except ServerCrashed as exc:
        result.detail = f"faulted server never came up: {exc}"
        return result
    try:
        job_ids = [_submit(handle, image, tools) for image in images]
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        handle.kill()
        result.detail = (f"server died before all submissions were "
                         f"accepted: {type(exc).__name__}: {exc}")
        return result
    try:
        result.server_exit = handle.proc.wait(timeout=COMPLETE_TIMEOUT)
    except subprocess.TimeoutExpired:
        handle.kill()
        result.detail = "injected kill never fired; server stayed alive"
        return result
    if result.server_exit != -signal.SIGKILL:
        result.detail = (f"expected the server to die of SIGKILL, got "
                         f"exit {result.server_exit}")
        return result

    # -- restarted server: same run dir, no fault ---------------------------
    try:
        handle = start_server(run_dir, cache_dir, tools=tools,
                              extra_args=("--isolation", "thread"))
    except ServerCrashed as exc:
        result.detail = f"restart on the crashed run dir failed: {exc}"
        return result
    try:
        _, _, health = handle.request("GET", "/v1/healthz")
        if not health.get("resumed"):
            result.detail = ("restarted server does not report the run "
                            "dir as resumed")
            return result
        _, _, metrics = handle.request("GET", "/v1/metrics")
        result.resumed_jobs = metrics["service"].get("resumed_jobs", 0)
        raw = _await_results(handle, job_ids)
        resumed = normalize_results(raw)
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = (f"resumed run failed: "
                         f"{type(exc).__name__}: {exc}")
        return result
    finally:
        handle.terminate()

    if result.resumed_jobs == 0:
        result.detail = ("restart re-enqueued no jobs — the kill landed "
                         "after all work finished; raise the ordinal")
        return result
    not_done = [j for j, doc in resumed.items()
                if doc.get("status") != "done"]
    if not_done:
        first = resumed[not_done[0]]
        result.detail = (f"{len(not_done)} job(s) unrecovered, first: "
                         f"{not_done[0]}: {first.get('error')}")
        return result
    if resumed != baseline:
        result.detail = _first_divergence(baseline, resumed)
        return result
    bad_receipt = _check_receipts(raw)
    if bad_receipt:
        result.detail = bad_receipt
        return result
    result.ok = True
    result.detail = "resumed results identical to the baseline"
    return result


def _run_hang_scenario(
    scenario_dir: Path,
    images: list[bytes],
    tools: tuple[str, ...],
    baseline: dict,
) -> ServiceScenarioResult:
    """A wedged worker is backstop-killed; the job completes on respawn.

    Deliberately run with *no* per-cell ``--timeout``: the injected
    hang cannot be broken by ``SIGALRM``, so only the supervisor's
    backstop stands between the job and the fault's 30s self-release.
    The server process must survive the whole episode.
    """
    ordinal = len(tools) + 2
    plan = f"hang@cell.execute#{ordinal}"
    result = ServiceScenarioResult(
        name="service-hang-backstop", plan=plan, ok=False, detail="")
    try:
        handle = start_server(
            scenario_dir / "run", scenario_dir / "cache", tools=tools,
            fault_plan=plan,
            extra_args=("--isolation", "process", "--backstop", "4"))
    except ServerCrashed as exc:
        result.detail = f"server never came up: {exc}"
        return result
    try:
        job_ids = [_submit(handle, image, tools) for image in images]
        raw = _await_results(handle, job_ids)
        if not handle.alive():
            result.detail = "server died while supervising the hang"
            return result
        resumed = normalize_results(raw)
        if resumed != baseline:
            result.detail = _first_divergence(baseline, resumed)
            return result
        _, _, metrics = handle.request("GET", "/v1/metrics")
        supervisor = metrics.get("supervisor") or {}
        if supervisor.get("backstop_kills", 0) < 1:
            result.detail = ("the backstop never fired — the hang was "
                             "not supervised away")
            return result
        if metrics["service"].get("crash_retries", 0) < 1:
            result.detail = ("no crash retry recorded — the hung job "
                             "did not complete on a respawned worker")
            return result
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = f"{type(exc).__name__}: {exc}"
        return result
    finally:
        result.server_exit = handle.terminate()
    result.ok = True
    result.detail = ("backstop killed the wedged worker; results match "
                     "the baseline")
    return result


def _run_poison_scenario(
    scenario_dir: Path,
    image: bytes,
    tools: tuple[str, ...],
) -> ServiceScenarioResult:
    """A worker-killing input is poisoned, quarantined, and stays dead."""
    plan = "kill@cell.execute#1"
    result = ServiceScenarioResult(
        name="service-poison-quarantine", plan=plan, ok=False, detail="")
    run_dir = scenario_dir / "run"
    cache_dir = scenario_dir / "cache"
    try:
        handle = start_server(
            run_dir, cache_dir, tools=tools, fault_plan=plan,
            extra_args=("--isolation", "process",
                        "--poison-threshold", "2"))
    except ServerCrashed as exc:
        result.detail = f"server never came up: {exc}"
        return result
    try:
        job_id = _submit(handle, image, tools)
        raw = _await_results(handle, [job_id])
        doc = raw[job_id]
        if doc.get("status") != "failed":
            result.detail = (f"expected the job to fail poisoned, got "
                             f"{doc.get('status')}")
            return result
        if "poisoned" not in (doc.get("error") or ""):
            result.detail = (f"job failed but not as poisoned: "
                             f"{doc.get('error')}")
            return result
        _, _, metrics = handle.request("GET", "/v1/metrics")
        if metrics["service"].get("poisoned", 0) != 1:
            result.detail = "metrics do not count the poisoned job"
            return result
        quarantined = [p for p in (run_dir / "quarantine").glob("*/input.bin")]
        if not quarantined:
            result.detail = "no quarantine entry captured the input"
            return result
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = f"{type(exc).__name__}: {exc}"
        return result
    finally:
        handle.terminate()

    # The verdict must be durable: a restarted (fault-free) server
    # must serve the job as failed without re-enqueueing it.
    try:
        handle = start_server(run_dir, cache_dir, tools=tools,
                              extra_args=("--isolation", "process"))
    except ServerCrashed as exc:
        result.detail = f"restart on the poisoned run dir failed: {exc}"
        return result
    try:
        _, _, metrics = handle.request("GET", "/v1/metrics")
        if metrics["service"].get("resumed_jobs", 0) != 0:
            result.detail = ("restart re-enqueued the poisoned job "
                             "despite its journaled verdict")
            return result
        status, _, doc = handle.request("GET", f"/v1/jobs/{job_id}")
        if status != 200 or doc["job"]["status"] != "failed" \
                or not doc["job"].get("poisoned"):
            result.detail = (f"restarted server lost the poison "
                             f"verdict: {doc}")
            return result
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = f"restarted run failed: {type(exc).__name__}: {exc}"
        return result
    finally:
        result.server_exit = handle.terminate()
    result.ok = True
    result.detail = ("job poisoned after 2 worker losses; quarantined "
                     "and durable across restart")
    return result


def _run_enospc_scenario(
    scenario_dir: Path,
    image: bytes,
    tools: tuple[str, ...],
) -> ServiceScenarioResult:
    """Disk-full degrades the service to read-only; a probe heals it."""
    plan = "enospc@journal.append#1"
    result = ServiceScenarioResult(
        name="service-enospc-degrade", plan=plan, ok=False, detail="")
    try:
        handle = start_server(
            scenario_dir / "run", scenario_dir / "cache", tools=tools,
            fault_plan=plan,
            extra_args=("--isolation", "thread",
                        "--probe-interval", "1"))
    except ServerCrashed as exc:
        result.detail = f"server never came up: {exc}"
        return result
    try:
        path = f"/v1/jobs?tools={','.join(tools)}"
        status, headers, doc = handle.request("POST", path, body=image)
        if status != 503:
            result.detail = (f"expected 503 on the faulted write, got "
                             f"{status}: {doc}")
            return result
        if "retry-after" not in headers:
            result.detail = "503 carried no Retry-After header"
            return result
        status, _, health = handle.request("GET", "/v1/healthz")
        if status != 200 or health.get("health") != "degraded":
            result.detail = (f"degradation not visible on /healthz: "
                             f"{status} {health.get('health')}")
            return result
        # Past the probe interval, the next write heals the service.
        time.sleep(1.2)
        status, _, doc = handle.request("POST", path, body=image)
        if status not in (200, 202):
            result.detail = (f"probe write did not recover the "
                             f"service: {status}: {doc}")
            return result
        job_id = doc["job"]["job_id"]
        raw = _await_results(handle, [job_id])
        if raw[job_id].get("status") != "done":
            result.detail = (f"post-recovery job did not complete: "
                             f"{raw[job_id]}")
            return result
        _, _, health = handle.request("GET", "/v1/healthz")
        if health.get("health") != "healthy":
            result.detail = (f"service stayed {health.get('health')} "
                             f"after a successful probe")
            return result
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = f"{type(exc).__name__}: {exc}"
        return result
    finally:
        result.server_exit = handle.terminate()
    result.ok = True
    result.detail = "degraded to read-only on ENOSPC, recovered on probe"
    return result


def _first_divergence(expected: dict, got: dict) -> str:
    for job_id in sorted(set(expected) | set(got)):
        a, b = expected.get(job_id), got.get(job_id)
        if a != b:
            return (f"job {job_id} diverged: baseline "
                    f"{json.dumps(a, sort_keys=True)[:200]} != resumed "
                    f"{json.dumps(b, sort_keys=True)[:200]}")
    return "results diverged in an unknown job"


def _check_receipts(raw: dict[str, dict]) -> str:
    """Every completed job must carry a ``job-receipt/v1`` receipt."""
    for job_id, doc in sorted(raw.items()):
        receipt = doc.get("receipt")
        if not receipt or receipt.get("schema") != RECEIPT_SCHEMA:
            return (f"job {job_id} completed without a "
                    f"{RECEIPT_SCHEMA} receipt")
    return ""
