"""Service chaos: prove the job API survives a SIGKILL mid-analysis.

The evaluation and ingest chaos harnesses exercise in-process resume
paths; the service scenario has to be harsher, because the claim is
about a *process*: a ``funseeker serve`` subprocess is killed dead by
an injected ``kill@cell.execute`` fault while a job is being analyzed,
a second server is started on the same run directory, and every job
submitted before the crash must complete with results identical to a
fault-free baseline server — completed work served from the journal,
interrupted work re-enqueued and re-analyzed.

The kill ordinal is chosen so the first binary finishes (and is
journaled) before the fault fires during the second binary's parse:
the scenario then proves both restore paths at once — replay of a
``job-completed`` line and re-execution from a ``job-submitted`` line.
"""

from __future__ import annotations

import http.client
import json
import os
import select
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.service.receipts import RECEIPT_SCHEMA
from repro.synth.corpus import build_corpus

#: Seconds to wait for a serve subprocess to print its address.
START_TIMEOUT = 30.0
#: Seconds to wait for all submitted jobs to reach a terminal state.
COMPLETE_TIMEOUT = 120.0
#: Seconds between result polls.
POLL_INTERVAL = 0.1

_CHAOS_TOOLS = ("funseeker", "fetch")


class ServerCrashed(RuntimeError):
    """The serve subprocess died while the harness still needed it."""


@dataclass
class ServerHandle:
    """One ``funseeker serve`` subprocess plus its bound address."""

    proc: subprocess.Popen
    host: str = ""
    port: int = 0

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict | None = None,
        timeout: float = 15.0,
    ) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
        finally:
            conn.close()
        return response.status, json.loads(payload.decode("utf-8"))

    def alive(self) -> bool:
        return self.proc.poll() is None

    def kill(self) -> None:
        if self.alive():
            self.proc.kill()
        self.proc.wait()

    def terminate(self, timeout: float = 15.0) -> int:
        """SIGTERM (graceful shutdown) and reap; returns the exit code."""
        if self.alive():
            self.proc.send_signal(signal.SIGTERM)
            try:
                return self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
        return self.proc.wait()


def start_server(
    run_dir: Path,
    cache_dir: Path,
    *,
    tools: tuple[str, ...] = _CHAOS_TOOLS,
    fault_plan: str | None = None,
    start_timeout: float = START_TIMEOUT,
) -> ServerHandle:
    """Spawn ``python -m repro serve`` and wait for its address line."""
    run_dir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    env.pop("REPRO_FAULT_PLAN", None)
    env.pop("REPRO_CACHE_DIR", None)
    if fault_plan:
        env["REPRO_FAULT_PLAN"] = fault_plan
    src_root = Path(repro.__file__).resolve().parents[1]
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (str(src_root) + (os.pathsep + existing
                                          if existing else ""))
    log = open(run_dir / "server.log", "ab")
    try:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--run-dir", str(run_dir),
             "--cache-dir", str(cache_dir),
             "--tools", ",".join(tools),
             "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=log, env=env,
        )
    finally:
        log.close()
    handle = ServerHandle(proc=proc)
    handle.host, handle.port = _await_address(proc, start_timeout)
    return handle


def _await_address(proc: subprocess.Popen,
                   timeout: float) -> tuple[str, int]:
    """Parse the ``serving on http://host:port`` line, without blocking."""
    deadline = time.monotonic() + timeout
    buffered = b""
    stream = proc.stdout
    assert stream is not None
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise ServerCrashed(
                f"serve subprocess exited with {proc.returncode} before "
                f"printing its address (see server.log in the run dir)")
        ready, _, _ = select.select([stream], [], [], 0.2)
        if not ready:
            continue
        chunk = os.read(stream.fileno(), 4096)
        if not chunk:
            continue
        buffered += chunk
        for line in buffered.decode("utf-8", "replace").splitlines():
            if line.startswith("serving on http://"):
                addr = line.removeprefix("serving on http://").strip()
                host, _, port = addr.rpartition(":")
                return host, int(port)
    proc.kill()
    raise ServerCrashed(
        f"serve subprocess printed no address within {timeout:.0f}s")


def _submit(handle: ServerHandle, image: bytes,
            tools: tuple[str, ...]) -> str:
    status, doc = handle.request(
        "POST", f"/v1/jobs?tools={','.join(tools)}", body=image)
    if status not in (200, 202):
        raise ServerCrashed(f"submit answered {status}: {doc}")
    return doc["job"]["job_id"]


def _await_results(
    handle: ServerHandle,
    job_ids: list[str],
    timeout: float = COMPLETE_TIMEOUT,
) -> dict[str, dict]:
    """Poll ``/result`` until every job is terminal; returns the docs."""
    deadline = time.monotonic() + timeout
    results: dict[str, dict] = {}
    while time.monotonic() < deadline:
        for job_id in job_ids:
            if job_id in results:
                continue
            status, doc = handle.request(
                "GET", f"/v1/jobs/{job_id}/result")
            if status == 200:
                results[job_id] = doc
        if len(results) == len(job_ids):
            return results
        time.sleep(POLL_INTERVAL)
    missing = [j for j in job_ids if j not in results]
    raise ServerCrashed(
        f"{len(missing)} job(s) not terminal after {timeout:.0f}s: "
        f"{missing}")


def normalize_results(results: dict[str, dict]) -> dict:
    """Strip timing/attribution noise down to the identity-bearing core."""
    doc: dict[str, dict] = {}
    for job_id, result in sorted(results.items()):
        if result.get("status") != "done":
            doc[job_id] = {"status": result.get("status"),
                           "error": result.get("error")}
            continue
        analysis = result["analysis"]
        doc[job_id] = {
            "status": "done",
            "sha256": analysis["sha256"],
            "tools": {
                name: report["functions"]
                for name, report in analysis["tools"].items()
            },
        }
    return doc


@dataclass
class ServiceScenarioResult:
    name: str
    plan: str
    ok: bool
    detail: str
    server_exit: int | None = None
    resumed_jobs: int = 0


@dataclass
class ServiceChaosReport:
    baseline_jobs: int = 0
    results: list[ServiceScenarioResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.results) and all(r.ok for r in self.results)

    def render(self) -> str:
        lines = [
            f"service chaos: {len(self.results)} scenario(s) over "
            f"{self.baseline_jobs} baseline jobs"
        ]
        for r in self.results:
            status = "ok  " if r.ok else "FAIL"
            exit_note = (f" server-exit={r.server_exit}"
                         if r.server_exit is not None else "")
            lines.append(
                f"  [{status}] {r.name:<22s} plan={r.plan} "
                f"resumed={r.resumed_jobs}{exit_note}")
            if not r.ok:
                lines.append(f"         {r.detail}")
        lines.append(
            "killed server resumed to the fault-free results"
            if self.ok else "UNRECOVERED service divergence — see above")
        return "\n".join(lines)


def run_service_chaos(
    work_dir: str | Path,
    *,
    seed: int = 2022,
    tools: tuple[str, ...] = _CHAOS_TOOLS,
    binaries: int = 3,
) -> ServiceChaosReport:
    """Baseline server vs killed-and-restarted server, same submissions."""
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    corpus = build_corpus("tiny", seed=seed)[:binaries]
    images = [entry.stripped for entry in corpus]
    report = ServiceChaosReport()

    # -- fault-free baseline -------------------------------------------------
    handle = start_server(work_dir / "baseline" / "run",
                          work_dir / "baseline" / "cache", tools=tools)
    try:
        job_ids = [_submit(handle, image, tools) for image in images]
        baseline = normalize_results(_await_results(handle, job_ids))
    finally:
        handle.terminate()
    report.baseline_jobs = len(baseline)

    # Fire during the second binary's parse: binary 1 (1 parse +
    # len(tools) detects) completes and is journaled first.
    ordinal = len(tools) + 2
    plan = f"kill@cell.execute#{ordinal}"
    report.results.append(_run_kill_scenario(
        work_dir / "kill", images, tools, plan, baseline))
    return report


def _run_kill_scenario(
    scenario_dir: Path,
    images: list[bytes],
    tools: tuple[str, ...],
    plan: str,
    baseline: dict,
) -> ServiceScenarioResult:
    result = ServiceScenarioResult(
        name="service-kill-mid-job", plan=plan, ok=False, detail="")
    run_dir = scenario_dir / "run"
    cache_dir = scenario_dir / "cache"

    # -- faulted server: submit everything, let the fault kill it -----------
    try:
        handle = start_server(run_dir, cache_dir, tools=tools,
                              fault_plan=plan)
    except ServerCrashed as exc:
        result.detail = f"faulted server never came up: {exc}"
        return result
    try:
        job_ids = [_submit(handle, image, tools) for image in images]
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        handle.kill()
        result.detail = (f"server died before all submissions were "
                         f"accepted: {type(exc).__name__}: {exc}")
        return result
    try:
        result.server_exit = handle.proc.wait(timeout=COMPLETE_TIMEOUT)
    except subprocess.TimeoutExpired:
        handle.kill()
        result.detail = "injected kill never fired; server stayed alive"
        return result
    if result.server_exit != -signal.SIGKILL:
        result.detail = (f"expected the server to die of SIGKILL, got "
                         f"exit {result.server_exit}")
        return result

    # -- restarted server: same run dir, no fault ---------------------------
    try:
        handle = start_server(run_dir, cache_dir, tools=tools)
    except ServerCrashed as exc:
        result.detail = f"restart on the crashed run dir failed: {exc}"
        return result
    try:
        _, health = handle.request("GET", "/v1/healthz")
        if not health.get("resumed"):
            result.detail = ("restarted server does not report the run "
                            "dir as resumed")
            return result
        _, metrics = handle.request("GET", "/v1/metrics")
        result.resumed_jobs = metrics["service"].get("resumed_jobs", 0)
        raw = _await_results(handle, job_ids)
        resumed = normalize_results(raw)
    except (ServerCrashed, OSError, http.client.HTTPException) as exc:
        result.detail = (f"resumed run failed: "
                         f"{type(exc).__name__}: {exc}")
        return result
    finally:
        handle.terminate()

    if result.resumed_jobs == 0:
        result.detail = ("restart re-enqueued no jobs — the kill landed "
                         "after all work finished; raise the ordinal")
        return result
    not_done = [j for j, doc in resumed.items()
                if doc.get("status") != "done"]
    if not_done:
        first = resumed[not_done[0]]
        result.detail = (f"{len(not_done)} job(s) unrecovered, first: "
                         f"{not_done[0]}: {first.get('error')}")
        return result
    if resumed != baseline:
        result.detail = _first_divergence(baseline, resumed)
        return result
    bad_receipt = _check_receipts(raw)
    if bad_receipt:
        result.detail = bad_receipt
        return result
    result.ok = True
    result.detail = "resumed results identical to the baseline"
    return result


def _first_divergence(expected: dict, got: dict) -> str:
    for job_id in sorted(set(expected) | set(got)):
        a, b = expected.get(job_id), got.get(job_id)
        if a != b:
            return (f"job {job_id} diverged: baseline "
                    f"{json.dumps(a, sort_keys=True)[:200]} != resumed "
                    f"{json.dumps(b, sort_keys=True)[:200]}")
    return "results diverged in an unknown job"


def _check_receipts(raw: dict[str, dict]) -> str:
    """Every completed job must carry a ``job-receipt/v1`` receipt."""
    for job_id, doc in sorted(raw.items()):
        receipt = doc.get("receipt")
        if not receipt or receipt.get("schema") != RECEIPT_SCHEMA:
            return (f"job {job_id} completed without a "
                    f"{RECEIPT_SCHEMA} receipt")
    return ""
