"""Provenance receipts: one ``job-receipt/v1`` document per job.

Every completed job carries a receipt answering, months later, "what
exactly produced this result": the submission identity (tenant + image
hash, fingerprinted the same way the run journal fingerprints a
corpus), the tool versions and cache schema in effect, per-tool cache
attribution (hit / miss / bypass), diagnostics tolerated along the way,
and whether the job survived a server restart. The receipt is journaled
with the result, so a resumed server serves the *original* receipt for
work it did before the crash and a fresh one for work it re-did.
"""

from __future__ import annotations

import hashlib
import platform
import time

from repro import __version__
from repro.cache.disk import SCHEMA_TAG
from repro.eval.analyze import ANALYSIS_SCHEMA, CACHE_HIT, ImageAnalysis

RECEIPT_SCHEMA = "job-receipt/v1"


def submission_fingerprint(sha256_hex: str) -> str:
    """Corpus-style fingerprint of a single-image submission.

    Matches :func:`repro.eval.journal.corpus_fingerprint` applied to a
    one-entry corpus whose label is the image hash: label bytes, a NUL,
    then the raw image digest. Receipts and run manifests therefore
    speak the same fingerprint language.
    """
    h = hashlib.sha256()
    h.update(sha256_hex.encode())
    h.update(b"\x00")
    h.update(bytes.fromhex(sha256_hex))
    return h.hexdigest()


def build_receipt(
    job,
    analysis: ImageAnalysis,
    *,
    resumed: bool = False,
    clock=time.time,
) -> dict:
    """The provenance receipt for one completed job."""
    tools_doc = {}
    for name, report in sorted(analysis.tools.items()):
        tools_doc[name] = {
            "functions": len(report.functions)
            if report.functions is not None else None,
            "cache": report.cache,
            "elapsed_seconds": report.elapsed_seconds,
            "ok": report.ok,
            "error_type": report.error_type,
        }
    return {
        "schema": RECEIPT_SCHEMA,
        "job_id": job.job_id,
        "tenant": job.tenant,
        "image": {
            "sha256": analysis.sha256,
            "size_bytes": analysis.size_bytes,
            "fingerprint": submission_fingerprint(analysis.sha256),
        },
        "tools": tools_doc,
        "cache": {
            "hits": sum(1 for t in analysis.tools.values()
                        if t.cache == CACHE_HIT),
            "misses": sum(1 for t in analysis.tools.values()
                          if t.cache != CACHE_HIT),
            "warm": analysis.warm,
        },
        "diagnostics": {
            "count": len(analysis.diagnostics),
            "records": analysis.diagnostics,
        },
        "versions": {
            "repro": __version__,
            "python": platform.python_version(),
            "cache_schema": SCHEMA_TAG,
            "analysis_schema": ANALYSIS_SCHEMA,
        },
        "timing": {
            "submitted_at": job.submitted_at,
            "completed_at": clock(),
            "analysis_seconds": analysis.elapsed_seconds,
        },
        "resumed": resumed,
    }
