"""Job lifecycle for the analysis service: dedup, queue, journal, resume.

The manager composes three existing substrates rather than inventing
new ones:

- **identity** — submissions are content-addressed: the job id is a
  digest of ``(tenant, image sha256, tool set)``, so resubmitting the
  same binary returns the same job (and performs zero additional
  analysis), and a restarted server recomputes identical ids from its
  journal.
- **durability** — every accepted submission writes the image to a
  content-addressed blob file and appends a ``job-submitted`` line to a
  :class:`~repro.eval.journal.JournalFile` (same crc32 envelope, fsync
  discipline, and ``journal.append`` fault point as the evaluation run
  journal); completion appends ``job-completed`` with the full analysis
  and receipt. A SIGKILL at any point loses at most a torn tail:
  completed work is served from the journal after restart, accepted but
  unfinished work is re-enqueued.
- **analysis** — jobs execute through
  :func:`repro.eval.analyze.analyze_image` on an injected
  ``concurrent.futures`` executor, reading per-tenant
  :func:`~repro.cache.disk.namespaced_cache` namespaces. Warm
  submissions (all requested artifacts cached) complete synchronously
  at submit time without touching the executor.

Batches additionally stage their images in one shared-memory arena
(:mod:`repro.eval.shm`) so executor workers slice a mapped segment
instead of re-reading blobs; the arena is destroyed when the batch
drains (and by the creator-side atexit guard on abnormal exit).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import sys
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.baselines import ALL_DETECTORS
from repro.cache.disk import DiskCache, namespaced_cache, valid_namespace
from repro.errors import (
    JournalWriteError,
    ManifestCorruptError,
    ManifestMismatchError,
    QueueFullError,
)
from repro.eval import shm
from repro.eval.analyze import (
    ImageAnalysis,
    analyze_image,
    content_digest,
    warm_lookup,
)
from repro.eval.journal import JournalFile, read_journal_lines
from repro.service.receipts import build_receipt

SERVICE_MANIFEST_SCHEMA = "service-manifest/v1"
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
BLOBS_DIR = "blobs"

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

DEFAULT_TENANT = "default"


def job_identity(tenant: str, sha256: str, tools: tuple[str, ...]) -> str:
    """Deterministic job id: same submission, same id — across restarts."""
    h = hashlib.sha256()
    h.update(tenant.encode())
    h.update(b"\x00")
    h.update(sha256.encode())
    h.update(b"\x00")
    h.update(",".join(tools).encode())
    return h.hexdigest()[:32]


@dataclass
class Job:
    """One submission's full lifecycle state."""

    job_id: str
    tenant: str
    sha256: str
    size_bytes: int
    tools: tuple[str, ...]
    submitted_at: float
    status: str = JOB_QUEUED
    analysis: ImageAnalysis | None = None
    receipt: dict | None = None
    completed_at: float | None = None
    #: Re-enqueued (or about to be) by a restarted server.
    resumed: bool = False
    error: str | None = None
    batch_id: str | None = None

    def doc(self) -> dict:
        """The status document served by ``GET /v1/jobs/{id}``."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "tenant": self.tenant,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "tools": list(self.tools),
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "resumed": self.resumed,
            "batch_id": self.batch_id,
            "error": self.error,
        }


@dataclass
class Batch:
    """A ``POST /v1/batch`` fan-out: job ids plus the staging arena."""

    batch_id: str
    job_ids: list[str]
    created_at: float
    pending: int = 0
    arena: object | None = None

    def doc(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "jobs": list(self.job_ids),
            "created_at": self.created_at,
            "pending": self.pending,
        }


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class JobManager:
    """Owns the job table, the bounded queue, and the run directory.

    Created (and driven) on one event loop; analysis bodies run on the
    injected executor. ``executor`` accepts any
    ``concurrent.futures.Executor`` — the default is a small thread
    pool, tests inject deterministic single-thread executors.
    """

    def __init__(
        self,
        run_dir: str | os.PathLike,
        *,
        tools: list[str] | tuple[str, ...] | None = None,
        cache_root: str | os.PathLike | None = None,
        queue_size: int = 64,
        executor: Executor | None = None,
        executor_workers: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        clock=time.time,
    ) -> None:
        if tools is None:
            tools = list(ALL_DETECTORS)
        unknown = [t for t in tools if t not in ALL_DETECTORS]
        if unknown:
            raise ValueError(
                f"unknown tools {unknown} "
                f"(known: {sorted(ALL_DETECTORS)})")
        self.tools = tuple(tools)
        self.run_dir = Path(run_dir)
        self.cache_root = Path(cache_root) if cache_root else None
        self.queue_size = queue_size
        self.timeout = timeout
        self.retries = retries
        self.clock = clock
        self.started_at = clock()
        #: Whether this manager resumed an existing run directory.
        self.resumed = False

        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.blobs_dir = self.run_dir / BLOBS_DIR
        self.blobs_dir.mkdir(exist_ok=True)
        self._open_manifest()
        self._journal = JournalFile(self.run_dir / JOURNAL_NAME)

        self._jobs: dict[str, Job] = {}
        self._batches: dict[str, Batch] = {}
        self._refs: dict[str, shm.ImageRef] = {}
        self._caches: dict[str, DiskCache] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue(maxsize=queue_size)
        self._own_executor = executor is None
        self._executor = executor or ThreadPoolExecutor(
            max_workers=executor_workers,
            thread_name_prefix="repro-analyze",
        )
        self._worker_count = max(1, executor_workers)
        self._workers: list[asyncio.Task] = []
        self._pending_resume: list[str] = []
        self.stats = {
            "submitted": 0, "deduped": 0, "warm_served": 0,
            "completed": 0, "failed": 0, "restored": 0,
            "resumed_jobs": 0, "rejected_queue_full": 0,
        }
        self._restore()

    # -- run-directory identity ---------------------------------------------

    def _open_manifest(self) -> None:
        path = self.run_dir / MANIFEST_NAME
        if path.exists():
            try:
                with open(path, encoding="utf-8") as f:
                    manifest = json.load(f)
            except (OSError, ValueError) as exc:
                raise ManifestCorruptError(
                    f"manifest in {self.run_dir} is unreadable or "
                    f"corrupt: {exc}") from exc
            if (not isinstance(manifest, dict)
                    or manifest.get("schema") != SERVICE_MANIFEST_SCHEMA):
                got = manifest.get("schema") if isinstance(manifest, dict) \
                    else type(manifest).__name__
                raise ManifestMismatchError(
                    f"run directory {self.run_dir} holds a {got!r} "
                    f"manifest, not {SERVICE_MANIFEST_SCHEMA}")
            self.manifest = manifest
            self.resumed = True
            return
        from repro import __version__

        self.manifest = {
            "schema": SERVICE_MANIFEST_SCHEMA,
            "version": __version__,
            "created": self.clock(),
        }
        _write_atomic(path, json.dumps(self.manifest, indent=1,
                                       sort_keys=True))

    def _restore(self) -> None:
        """Rebuild the job table from the journal (crash recovery)."""
        payloads, corrupt, torn = read_journal_lines(
            self.run_dir / JOURNAL_NAME)
        if corrupt:
            obs.add("service.journal_corrupt_lines", corrupt)
        if torn:
            obs.add("service.journal_torn_tail", 1)
        for data in payloads:
            kind = data.get("kind")
            try:
                if kind == "job-submitted":
                    job = Job(
                        job_id=data["job"],
                        tenant=data["tenant"],
                        sha256=data["sha256"],
                        size_bytes=data["size"],
                        tools=tuple(data["tools"]),
                        submitted_at=data["at"],
                    )
                    self._jobs[job.job_id] = job
                elif kind == "job-completed":
                    job = self._jobs.get(data["job"])
                    if job is None:
                        continue
                    job.analysis = ImageAnalysis.from_doc(data["analysis"])
                    job.receipt = data["receipt"]
                    job.status = JOB_DONE
                    job.completed_at = data["at"]
            except (KeyError, TypeError, ValueError):
                obs.add("service.journal_corrupt_lines", 1)
                continue
        for job in self._jobs.values():
            if job.status == JOB_DONE:
                self.stats["restored"] += 1
                continue
            job.resumed = True
            if not self._blob_path(job.sha256).is_file():
                job.status = JOB_FAILED
                job.error = ("image blob lost before the crash; "
                             "resubmit the binary")
                continue
            self._pending_resume.append(job.job_id)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks and re-enqueue journaled pending jobs."""
        for _ in range(self._worker_count):
            self._workers.append(asyncio.create_task(self._worker()))
        for job_id in self._pending_resume:
            self.stats["resumed_jobs"] += 1
            obs.add("service.jobs_resumed", 1)
            await self._queue.put(job_id)
        self._pending_resume = []

    async def stop(self) -> None:
        """Graceful shutdown: stop workers, keep the journal consistent.

        Running analyses are abandoned (their futures cancelled where
        possible) — by design their ``job-completed`` line was never
        written, so the next server on this run directory re-runs them.
        """
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        if self._own_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
        for batch in self._batches.values():
            if batch.arena is not None:
                batch.arena.destroy()
                batch.arena = None
        self._journal.close()

    # -- accessors -----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def get_batch(self, batch_id: str) -> Batch | None:
        return self._batches.get(batch_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def status_counts(self) -> dict[str, int]:
        counts = {JOB_QUEUED: 0, JOB_RUNNING: 0, JOB_DONE: 0, JOB_FAILED: 0}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def cache_for(self, tenant: str) -> DiskCache | None:
        if self.cache_root is None:
            return None
        cache = self._caches.get(tenant)
        if cache is None:
            cache = namespaced_cache(self.cache_root, tenant)
            self._caches[tenant] = cache
        return cache

    # -- submission ----------------------------------------------------------

    def _normalize_tools(
        self, tools: list[str] | tuple[str, ...] | None,
    ) -> tuple[str, ...]:
        if not tools:
            return self.tools
        unknown = [t for t in tools if t not in ALL_DETECTORS]
        if unknown:
            raise ValueError(
                f"unknown tools {unknown} "
                f"(known: {sorted(ALL_DETECTORS)})")
        return tuple(tools)

    def submit(
        self,
        data: bytes,
        *,
        tenant: str = DEFAULT_TENANT,
        tools: list[str] | tuple[str, ...] | None = None,
        batch_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Accept one binary; returns ``(job, created)``.

        Dedup happens before anything else: a job id already known —
        whatever its state — is returned as-is (``created=False``) and
        no bytes are written, no analysis scheduled. A novel submission
        is answered from the disk cache when warm (the job completes
        here, synchronously, without a parse); otherwise it is
        journaled, blobbed, and enqueued. A full queue raises
        :class:`~repro.errors.QueueFullError` *before* any durable
        side effect.
        """
        if not valid_namespace(tenant):
            raise ValueError(f"invalid tenant {tenant!r}")
        tools = self._normalize_tools(tools)
        sha256 = content_digest(data)
        job_id = job_identity(tenant, sha256, tools)
        existing = self._jobs.get(job_id)
        if existing is not None:
            self.stats["deduped"] += 1
            obs.add("service.dedup_hits", 1)
            return existing, False

        self.stats["submitted"] += 1
        obs.add("service.jobs_submitted", 1)
        job = Job(
            job_id=job_id, tenant=tenant, sha256=sha256,
            size_bytes=len(data), tools=tools,
            submitted_at=self.clock(), batch_id=batch_id,
        )

        cache = self.cache_for(tenant)
        warm = warm_lookup(sha256, len(data), tools, cache)
        if warm is not None:
            self.stats["warm_served"] += 1
            obs.add("service.warm_served", 1)
            self._journal_submitted(job)
            self._jobs[job_id] = job
            self._finish(job, warm)
            return job, True

        if self._queue.full():
            self.stats["rejected_queue_full"] += 1
            obs.add("service.queue_rejections", 1)
            raise QueueFullError(
                f"job queue full ({self.queue_size} pending)",
                retry_after=max(1.0, (self.timeout or 1.0)))
        self._write_blob(sha256, data)
        self._journal_submitted(job)
        self._jobs[job_id] = job
        self._queue.put_nowait(job_id)
        return job, True

    def submit_batch(
        self,
        items: list[bytes],
        *,
        tenant: str = DEFAULT_TENANT,
        tools: list[str] | tuple[str, ...] | None = None,
    ) -> tuple[Batch, list[Job]]:
        """Fan a list of binaries into the job machinery as one batch.

        Capacity is checked up front (all-or-nothing): a batch that
        would overflow the queue is rejected whole, so callers never
        see half-accepted batches. Freshly-queued images are staged in
        one shared-memory arena for zero-copy executor reads; the arena
        dies with the batch.
        """
        tools = self._normalize_tools(tools)
        if len(items) > self.queue_size - self._queue.qsize():
            self.stats["rejected_queue_full"] += 1
            obs.add("service.queue_rejections", 1)
            raise QueueFullError(
                f"batch of {len(items)} exceeds remaining queue "
                f"capacity", retry_after=max(1.0, (self.timeout or 1.0)))
        batch_id = hashlib.sha256(
            b"\x00".join(content_digest(d).encode() for d in items)
            + f"\x00{tenant}\x00{','.join(tools)}".encode()
        ).hexdigest()[:16]
        batch = Batch(batch_id=batch_id, job_ids=[],
                      created_at=self.clock())
        jobs: list[Job] = []
        fresh: list[Job] = []
        fresh_images: list[bytes] = []
        for data in items:
            job, created = self.submit(
                data, tenant=tenant, tools=tools, batch_id=batch_id)
            jobs.append(job)
            batch.job_ids.append(job.job_id)
            if created and job.status == JOB_QUEUED:
                fresh.append(job)
                fresh_images.append(data)
        if fresh and shm.available():
            arena, refs = shm.share_images(fresh_images)
            batch.arena = arena
            batch.pending = len(fresh)
            for job, ref in zip(fresh, refs):
                self._refs[job.job_id] = ref
        self._batches[batch_id] = batch
        obs.add("service.batches", 1)
        return batch, jobs

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.status not in (JOB_QUEUED,):
                continue
            job.status = JOB_RUNNING
            try:
                analysis = await loop.run_in_executor(
                    self._executor, self._execute, job)
            except asyncio.CancelledError:
                # Graceful shutdown mid-job: back to queued so the
                # status endpoint tells the truth; the journal already
                # guarantees a restart re-runs it.
                job.status = JOB_QUEUED
                raise
            except Exception as exc:
                self._fail(job, exc)
            else:
                self._finish(job, analysis)

    def _execute(self, job: Job) -> ImageAnalysis:
        """Runs on the executor — never touches the event-loop state."""
        ref = self._refs.get(job.job_id)
        if ref is not None:
            data = ref.fetch()
        else:
            data = self._blob_path(job.sha256).read_bytes()
        return analyze_image(
            data, job.tools,
            cache=self.cache_for(job.tenant),
            use_default_cache=self.cache_root is None,
            timeout=self.timeout,
            retries=self.retries,
        )

    def _finish(self, job: Job, analysis: ImageAnalysis) -> None:
        job.analysis = analysis
        job.receipt = build_receipt(job, analysis, resumed=job.resumed,
                                    clock=self.clock)
        job.completed_at = self.clock()
        job.status = JOB_DONE
        job.error = None
        self.stats["completed"] += 1
        obs.add("service.jobs_completed", 1)
        try:
            self._journal.append({
                "kind": "job-completed",
                "job": job.job_id,
                "analysis": analysis.to_doc(),
                "receipt": job.receipt,
                "at": job.completed_at,
            })
        except JournalWriteError as exc:
            # The result stands in memory; only restart durability is
            # degraded. Surface it rather than failing the job.
            obs.add("service.journal_write_errors", 1)
            print(f"warning: job {job.job_id} completion not journaled: "
                  f"{exc}", file=sys.stderr)
        self._release_batch(job)

    def _fail(self, job: Job, error: BaseException) -> None:
        job.status = JOB_FAILED
        job.error = f"{type(error).__name__}: {error}"
        self.stats["failed"] += 1
        obs.add("service.jobs_failed", 1)
        # Deliberately not journaled: like evaluation-cell failures,
        # an infrastructure failure is retried by the next resume.
        self._release_batch(job)

    def _release_batch(self, job: Job) -> None:
        self._refs.pop(job.job_id, None)
        if job.batch_id is None:
            return
        batch = self._batches.get(job.batch_id)
        if batch is None or batch.arena is None:
            return
        batch.pending -= 1
        if batch.pending <= 0:
            batch.arena.destroy()
            batch.arena = None

    # -- durability ----------------------------------------------------------

    def _blob_path(self, sha256: str) -> Path:
        return self.blobs_dir / f"{sha256}.bin"

    def _write_blob(self, sha256: str, data: bytes) -> None:
        path = self._blob_path(sha256)
        if path.is_file():
            return
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    def _journal_submitted(self, job: Job) -> None:
        self._journal.append({
            "kind": "job-submitted",
            "job": job.job_id,
            "tenant": job.tenant,
            "sha256": job.sha256,
            "size": job.size_bytes,
            "tools": list(job.tools),
            "at": job.submitted_at,
        })
