"""Job lifecycle for the analysis service: dedup, queue, journal, resume.

The manager composes three existing substrates rather than inventing
new ones:

- **identity** — submissions are content-addressed: the job id is a
  digest of ``(tenant, image sha256, tool set)``, so resubmitting the
  same binary returns the same job (and performs zero additional
  analysis), and a restarted server recomputes identical ids from its
  journal.
- **durability** — every accepted submission writes the image to a
  content-addressed blob file and appends a ``job-submitted`` line to a
  :class:`~repro.eval.journal.JournalFile` (same crc32 envelope, fsync
  discipline, and ``journal.append`` fault point as the evaluation run
  journal); completion appends ``job-completed`` with the full analysis
  and receipt. A SIGKILL at any point loses at most a torn tail:
  completed work is served from the journal after restart, accepted but
  unfinished work is re-enqueued.
- **analysis** — jobs execute through
  :func:`repro.eval.analyze.analyze_image` on an injected
  ``concurrent.futures`` executor, reading per-tenant
  :func:`~repro.cache.disk.namespaced_cache` namespaces. Warm
  submissions (all requested artifacts cached) complete synchronously
  at submit time without touching the executor.

Batches additionally stage their images in one shared-memory arena
(:mod:`repro.eval.shm`) so executor workers slice a mapped segment
instead of re-reading blobs; the arena is destroyed when the batch
drains (and by the creator-side atexit guard on abnormal exit).

Execution isolation (``isolation="process"``) swaps the thread pool
for a :class:`~repro.service.supervisor.SupervisedExecutor`: jobs run
in supervised child processes where the ``SIGALRM`` deadline and
``RLIMIT_AS`` ceiling actually arm, and a job that kills or wedges its
worker is retried on a fresh worker until ``poison_threshold`` losses,
at which point it is failed permanently, its bytes quarantined, and a
``job-poisoned`` journal record written so a restart does not
re-enqueue it. The manager also runs a health state machine
(healthy / degraded / draining): ENOSPC from the blob store or journal
flips it into *degraded* read-only mode — reads keep working, write
admission raises :class:`~repro.errors.ServiceUnavailableError`
(HTTP 503 + Retry-After), and the first POST after ``probe_interval``
acts as the recovery probe.
"""

from __future__ import annotations

import asyncio
import errno
import hashlib
import json
import os
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro import faults, obs
from repro.baselines import ALL_DETECTORS
from repro.cache.disk import DiskCache, namespaced_cache, valid_namespace
from repro.errors import (
    JournalWriteError,
    ManifestCorruptError,
    ManifestMismatchError,
    QueueFullError,
    ServiceUnavailableError,
    WorkerLostError,
    is_permanent_failure,
)
from repro.eval import shm
from repro.eval.analyze import (
    ImageAnalysis,
    analyze_image,
    content_digest,
    warm_lookup,
)
from repro.eval.journal import JournalFile, read_journal_lines
from repro.eval.quarantine import QuarantineStore
from repro.obs import log
from repro.service.receipts import build_receipt
from repro.service.supervisor import (
    DEFAULT_BACKSTOP,
    REASON_SHUTDOWN,
    SupervisedExecutor,
)

SERVICE_MANIFEST_SCHEMA = "service-manifest/v1"
MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
BLOBS_DIR = "blobs"
QUARANTINE_DIR = "quarantine"

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"

#: Manager health states surfaced through ``/v1/healthz``.
HEALTH_HEALTHY = "healthy"
HEALTH_DEGRADED = "degraded"
HEALTH_DRAINING = "draining"

DEFAULT_TENANT = "default"

#: Worker losses before a job is failed permanently and quarantined.
DEFAULT_POISON_THRESHOLD = 3

#: Seconds between degraded-mode recovery probes (the first write
#: admitted after this interval attempts real durable writes).
DEFAULT_PROBE_INTERVAL = 30.0


def execute_payload(payload: dict) -> ImageAnalysis:
    """Run one job body from a plain-data payload.

    Module-level and pickle-clean on purpose: this is the function a
    :class:`~repro.service.supervisor.SupervisedExecutor` ships to its
    worker subprocesses (thread executors call it too, so both
    isolation modes execute identical code). The payload carries either
    a shared-memory ``ref`` or a blob ``path``, plus the cache
    coordinates — ``cache`` (a live :class:`DiskCache`, thread mode
    only) or ``cache_root``/``tenant`` to attach per-process.
    """
    faults.hit(faults.SITE_BLOB_READ)
    ref = payload.get("ref")
    if ref is not None:
        data = ref.fetch()
    else:
        data = Path(payload["blob"]).read_bytes()
    cache = payload.get("cache")
    cache_root = payload.get("cache_root")
    if cache is None and cache_root is not None:
        cache = namespaced_cache(Path(cache_root), payload["tenant"])
    return analyze_image(
        data,
        payload["tools"],
        cache=cache,
        use_default_cache=payload.get("use_default_cache", False),
        timeout=payload.get("timeout"),
        retries=payload.get("retries", 0),
    )


def _is_enospc(error: BaseException) -> bool:
    """Whether an exception (or its cause chain) is a disk-full OSError."""
    seen = 0
    exc: BaseException | None = error
    while exc is not None and seen < 5:
        if isinstance(exc, OSError) and exc.errno == errno.ENOSPC:
            return True
        exc = exc.__cause__ or exc.__context__
        seen += 1
    return False


def job_identity(tenant: str, sha256: str, tools: tuple[str, ...]) -> str:
    """Deterministic job id: same submission, same id — across restarts."""
    h = hashlib.sha256()
    h.update(tenant.encode())
    h.update(b"\x00")
    h.update(sha256.encode())
    h.update(b"\x00")
    h.update(",".join(tools).encode())
    return h.hexdigest()[:32]


@dataclass
class Job:
    """One submission's full lifecycle state."""

    job_id: str
    tenant: str
    sha256: str
    size_bytes: int
    tools: tuple[str, ...]
    submitted_at: float
    status: str = JOB_QUEUED
    analysis: ImageAnalysis | None = None
    receipt: dict | None = None
    completed_at: float | None = None
    #: Re-enqueued (or about to be) by a restarted server.
    resumed: bool = False
    error: str | None = None
    batch_id: str | None = None
    #: Times this job's supervised worker was lost (killed/wedged).
    crashes: int = 0
    #: Permanently failed after ``poison_threshold`` worker losses.
    poisoned: bool = False
    #: Quarantine entry directory holding the poisoned input, if any.
    quarantined: str | None = None

    def doc(self) -> dict:
        """The status document served by ``GET /v1/jobs/{id}``."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "tenant": self.tenant,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "tools": list(self.tools),
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
            "resumed": self.resumed,
            "batch_id": self.batch_id,
            "error": self.error,
            "crashes": self.crashes,
            "poisoned": self.poisoned,
            "quarantined": self.quarantined,
        }


@dataclass
class Batch:
    """A ``POST /v1/batch`` fan-out: job ids plus the staging arena."""

    batch_id: str
    job_ids: list[str]
    created_at: float
    pending: int = 0
    arena: object | None = None

    def doc(self) -> dict:
        return {
            "batch_id": self.batch_id,
            "jobs": list(self.job_ids),
            "created_at": self.created_at,
            "pending": self.pending,
        }


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        f.write(text)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


class JobManager:
    """Owns the job table, the bounded queue, and the run directory.

    Created (and driven) on one event loop; analysis bodies run on the
    injected executor. ``executor`` accepts any
    ``concurrent.futures.Executor`` — the default is a small thread
    pool, tests inject deterministic single-thread executors.
    """

    def __init__(
        self,
        run_dir: str | os.PathLike,
        *,
        tools: list[str] | tuple[str, ...] | None = None,
        cache_root: str | os.PathLike | None = None,
        queue_size: int = 64,
        executor: Executor | None = None,
        executor_workers: int = 1,
        timeout: float | None = None,
        retries: int = 0,
        isolation: str = "thread",
        backstop: float | None = DEFAULT_BACKSTOP,
        poison_threshold: int = DEFAULT_POISON_THRESHOLD,
        max_rss_mb: int | None = None,
        probe_interval: float = DEFAULT_PROBE_INTERVAL,
        clock=time.time,
    ) -> None:
        if tools is None:
            tools = list(ALL_DETECTORS)
        unknown = [t for t in tools if t not in ALL_DETECTORS]
        if unknown:
            raise ValueError(
                f"unknown tools {unknown} "
                f"(known: {sorted(ALL_DETECTORS)})")
        if isolation not in ("thread", "process"):
            raise ValueError(
                f"unknown isolation {isolation!r} "
                f"(pick 'thread' or 'process')")
        self.tools = tuple(tools)
        self.run_dir = Path(run_dir)
        self.cache_root = Path(cache_root) if cache_root else None
        self.queue_size = queue_size
        self.timeout = timeout
        self.retries = retries
        self.poison_threshold = max(1, poison_threshold)
        self.probe_interval = max(0.0, probe_interval)
        self.clock = clock
        self.started_at = clock()
        #: Whether this manager resumed an existing run directory.
        self.resumed = False
        #: Health state machine: healthy → degraded (read-only, on
        #: ENOSPC) → healthy again after a successful probe; draining
        #: once :meth:`stop` begins.
        self.health = HEALTH_HEALTHY
        self.health_reason: str | None = None
        self._next_probe = 0.0

        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.blobs_dir = self.run_dir / BLOBS_DIR
        self.blobs_dir.mkdir(exist_ok=True)
        self.quarantine_dir = self.run_dir / QUARANTINE_DIR
        self._quarantine = QuarantineStore(self.quarantine_dir)
        self._open_manifest()
        self._journal = JournalFile(self.run_dir / JOURNAL_NAME)

        self._jobs: dict[str, Job] = {}
        self._batches: dict[str, Batch] = {}
        self._refs: dict[str, shm.ImageRef] = {}
        self._caches: dict[str, DiskCache] = {}
        self._queue: asyncio.Queue[str] = asyncio.Queue(maxsize=queue_size)
        self._own_executor = executor is None
        if executor is None:
            if isolation == "process":
                executor = SupervisedExecutor(
                    max_workers=max(1, executor_workers),
                    backstop=backstop,
                    max_rss_mb=max_rss_mb,
                )
            else:
                executor = ThreadPoolExecutor(
                    max_workers=executor_workers,
                    thread_name_prefix="repro-analyze",
                )
        #: The effective isolation mode (injected executors advertise
        #: process isolation via a ``process_isolated`` attribute).
        self.isolation = ("process"
                          if getattr(executor, "process_isolated", False)
                          else "thread")
        self._executor = executor
        self._worker_count = max(1, executor_workers)
        self._workers: list[asyncio.Task] = []
        self._pending_resume: list[str] = []
        self.stats = {
            "submitted": 0, "deduped": 0, "warm_served": 0,
            "completed": 0, "failed": 0, "restored": 0,
            "resumed_jobs": 0, "rejected_queue_full": 0,
            "poisoned": 0, "crash_retries": 0, "rejected_degraded": 0,
        }
        self._restore()

    # -- run-directory identity ---------------------------------------------

    def _open_manifest(self) -> None:
        path = self.run_dir / MANIFEST_NAME
        if path.exists():
            try:
                with open(path, encoding="utf-8") as f:
                    manifest = json.load(f)
            except (OSError, ValueError) as exc:
                raise ManifestCorruptError(
                    f"manifest in {self.run_dir} is unreadable or "
                    f"corrupt: {exc}") from exc
            if (not isinstance(manifest, dict)
                    or manifest.get("schema") != SERVICE_MANIFEST_SCHEMA):
                got = manifest.get("schema") if isinstance(manifest, dict) \
                    else type(manifest).__name__
                raise ManifestMismatchError(
                    f"run directory {self.run_dir} holds a {got!r} "
                    f"manifest, not {SERVICE_MANIFEST_SCHEMA}")
            self.manifest = manifest
            self.resumed = True
            return
        from repro import __version__

        self.manifest = {
            "schema": SERVICE_MANIFEST_SCHEMA,
            "version": __version__,
            "created": self.clock(),
        }
        _write_atomic(path, json.dumps(self.manifest, indent=1,
                                       sort_keys=True))

    def _restore(self) -> None:
        """Rebuild the job table from the journal (crash recovery)."""
        payloads, corrupt, torn = read_journal_lines(
            self.run_dir / JOURNAL_NAME)
        if corrupt:
            obs.add("service.journal_corrupt_lines", corrupt)
        if torn:
            obs.add("service.journal_torn_tail", 1)
        for data in payloads:
            kind = data.get("kind")
            try:
                if kind == "job-submitted":
                    job = Job(
                        job_id=data["job"],
                        tenant=data["tenant"],
                        sha256=data["sha256"],
                        size_bytes=data["size"],
                        tools=tuple(data["tools"]),
                        submitted_at=data["at"],
                    )
                    self._jobs[job.job_id] = job
                elif kind == "job-completed":
                    job = self._jobs.get(data["job"])
                    if job is None:
                        continue
                    job.analysis = ImageAnalysis.from_doc(data["analysis"])
                    job.receipt = data["receipt"]
                    job.status = JOB_DONE
                    job.completed_at = data["at"]
                elif kind in ("job-failed", "job-poisoned"):
                    # Terminal failures: a restart must NOT re-enqueue
                    # these — that is the whole point of journaling
                    # them (poison jobs would otherwise kill workers
                    # forever).
                    job = self._jobs.get(data["job"])
                    if job is None:
                        continue
                    job.status = JOB_FAILED
                    job.error = data.get("error")
                    job.completed_at = data["at"]
                    if kind == "job-poisoned":
                        job.poisoned = True
                        job.crashes = data.get("crashes", 0)
                        job.quarantined = data.get("quarantine")
            except (KeyError, TypeError, ValueError):
                obs.add("service.journal_corrupt_lines", 1)
                continue
        for job in self._jobs.values():
            if job.status in (JOB_DONE, JOB_FAILED):
                self.stats["restored"] += 1
                continue
            job.resumed = True
            if not self._blob_path(job.sha256).is_file():
                job.status = JOB_FAILED
                job.error = ("image blob lost before the crash; "
                             "resubmit the binary")
                continue
            self._pending_resume.append(job.job_id)

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks and re-enqueue journaled pending jobs."""
        for _ in range(self._worker_count):
            self._workers.append(asyncio.create_task(self._worker()))
        for job_id in self._pending_resume:
            self.stats["resumed_jobs"] += 1
            obs.add("service.jobs_resumed", 1)
            await self._queue.put(job_id)
        self._pending_resume = []

    async def stop(self) -> None:
        """Graceful shutdown: stop workers, keep the journal consistent.

        Running analyses are abandoned (their futures cancelled where
        possible) — by design their ``job-completed`` line was never
        written, so the next server on this run directory re-runs them.
        A supervised executor is shut down *first* so in-flight futures
        resolve (as shutdown losses) instead of leaving worker
        coroutines awaiting a child process that nobody will reap.
        """
        self.health = HEALTH_DRAINING
        self.health_reason = "shutting down"
        if self._own_executor and self.isolation == "process":
            self._executor.shutdown(wait=False, cancel_futures=True)
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []
        if self._own_executor:
            self._executor.shutdown(wait=False, cancel_futures=True)
        for batch in self._batches.values():
            if batch.arena is not None:
                batch.arena.destroy()
                batch.arena = None
        self._journal.close()

    # -- accessors -----------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def get_batch(self, batch_id: str) -> Batch | None:
        return self._batches.get(batch_id)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def queue_depth(self) -> int:
        return self._queue.qsize()

    def status_counts(self) -> dict[str, int]:
        counts = {JOB_QUEUED: 0, JOB_RUNNING: 0, JOB_DONE: 0, JOB_FAILED: 0}
        for job in self._jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return counts

    def supervisor_stats(self) -> dict | None:
        """The executor's supervision counters, when it has any."""
        stats = getattr(self._executor, "stats", None)
        if not callable(stats):
            return None
        try:
            doc = stats()
        except Exception:
            return None
        return doc if isinstance(doc, dict) else None

    def quarantine_entries(self) -> list:
        """Captured poison inputs (see :mod:`repro.eval.quarantine`)."""
        return self._quarantine.entries()

    def cache_for(self, tenant: str) -> DiskCache | None:
        if self.cache_root is None:
            return None
        cache = self._caches.get(tenant)
        if cache is None:
            cache = namespaced_cache(self.cache_root, tenant)
            self._caches[tenant] = cache
        return cache

    # -- submission ----------------------------------------------------------

    def _normalize_tools(
        self, tools: list[str] | tuple[str, ...] | None,
    ) -> tuple[str, ...]:
        if not tools:
            return self.tools
        unknown = [t for t in tools if t not in ALL_DETECTORS]
        if unknown:
            raise ValueError(
                f"unknown tools {unknown} "
                f"(known: {sorted(ALL_DETECTORS)})")
        return tuple(tools)

    def submit(
        self,
        data: bytes,
        *,
        tenant: str = DEFAULT_TENANT,
        tools: list[str] | tuple[str, ...] | None = None,
        batch_id: str | None = None,
    ) -> tuple[Job, bool]:
        """Accept one binary; returns ``(job, created)``.

        Dedup happens before anything else: a job id already known —
        whatever its state — is returned as-is (``created=False``) and
        no bytes are written, no analysis scheduled. A novel submission
        is answered from the disk cache when warm (the job completes
        here, synchronously, without a parse); otherwise it is
        journaled, blobbed, and enqueued. A full queue raises
        :class:`~repro.errors.QueueFullError` *before* any durable
        side effect, and a degraded (read-only) manager raises
        :class:`~repro.errors.ServiceUnavailableError` the same way —
        dedup of already-known jobs keeps working in both cases.
        """
        if not valid_namespace(tenant):
            raise ValueError(f"invalid tenant {tenant!r}")
        tools = self._normalize_tools(tools)
        sha256 = content_digest(data)
        job_id = job_identity(tenant, sha256, tools)
        existing = self._jobs.get(job_id)
        if existing is not None:
            self.stats["deduped"] += 1
            obs.add("service.dedup_hits", 1)
            return existing, False
        self._admit_write()

        self.stats["submitted"] += 1
        obs.add("service.jobs_submitted", 1)
        job = Job(
            job_id=job_id, tenant=tenant, sha256=sha256,
            size_bytes=len(data), tools=tools,
            submitted_at=self.clock(), batch_id=batch_id,
        )

        cache = self.cache_for(tenant)
        warm = warm_lookup(sha256, len(data), tools, cache)
        if warm is not None:
            self.stats["warm_served"] += 1
            obs.add("service.warm_served", 1)
            self._durable_submit(job)
            self._jobs[job_id] = job
            self._finish(job, warm)
            return job, True

        if self._queue.full():
            self.stats["rejected_queue_full"] += 1
            obs.add("service.queue_rejections", 1)
            raise QueueFullError(
                f"job queue full ({self.queue_size} pending)",
                retry_after=max(1.0, (self.timeout or 1.0)))
        self._durable_submit(job, data=data)
        self._jobs[job_id] = job
        self._queue.put_nowait(job_id)
        return job, True

    def _admit_write(self) -> None:
        """Gate write traffic on manager health (read paths never gate).

        Draining always rejects. Degraded rejects until
        ``probe_interval`` has elapsed since degradation (or the last
        failed probe) — then the *next* write is admitted as the
        recovery probe: if its durable writes succeed the manager heals
        itself, if they fail the probe clock rearms.
        """
        if self.health == HEALTH_DRAINING:
            raise ServiceUnavailableError(
                "service is draining; submissions are closed",
                retry_after=5.0)
        if self.health != HEALTH_DEGRADED:
            return
        now = self.clock()
        if now < self._next_probe:
            self.stats["rejected_degraded"] += 1
            obs.add("service.degraded_rejections", 1)
            raise ServiceUnavailableError(
                f"service degraded ({self.health_reason}); read-only "
                f"until storage recovers",
                retry_after=max(1.0, self._next_probe - now))
        # This submission is the probe; push the next probe window out
        # so a failing probe does not open the floodgates.
        self._next_probe = now + max(1.0, self.probe_interval)

    def _durable_submit(self, job: Job, data: bytes | None = None) -> None:
        """Blob + journal a fresh submission; track storage health.

        Any failure of the durable writes fails the submission (the
        caller never sees a job it cannot trust to survive a restart);
        an ENOSPC flips the manager into degraded read-only mode, and a
        success while degraded recovers it.
        """
        try:
            if data is not None:
                self._write_blob(job.sha256, data)
            self._journal_submitted(job)
        except (OSError, JournalWriteError) as exc:
            self.stats["submitted"] -= 1
            if _is_enospc(exc):
                self._enter_degraded(f"storage full: {exc}")
                raise ServiceUnavailableError(
                    "storage full; service is read-only",
                    retry_after=max(1.0, self.probe_interval)) from exc
            raise
        if self.health == HEALTH_DEGRADED:
            self._exit_degraded()

    def _enter_degraded(self, reason: str) -> None:
        if self.health != HEALTH_HEALTHY:
            self.health_reason = reason
            return
        self.health = HEALTH_DEGRADED
        self.health_reason = reason
        self._next_probe = self.clock() + max(1.0, self.probe_interval)
        obs.add("service.degraded_entries", 1)
        log.warn("service.degraded_log",
                 f"service degraded to read-only: {reason}")

    def _exit_degraded(self) -> None:
        self.health = HEALTH_HEALTHY
        reason, self.health_reason = self.health_reason, None
        obs.add("service.degraded_recoveries", 1)
        log.warn("service.recovered_log",
                 f"service recovered from degraded state ({reason})")

    def submit_batch(
        self,
        items: list[bytes],
        *,
        tenant: str = DEFAULT_TENANT,
        tools: list[str] | tuple[str, ...] | None = None,
    ) -> tuple[Batch, list[Job]]:
        """Fan a list of binaries into the job machinery as one batch.

        Capacity is checked up front (all-or-nothing): a batch that
        would overflow the queue is rejected whole, so callers never
        see half-accepted batches. Freshly-queued images are staged in
        one shared-memory arena for zero-copy executor reads; the arena
        dies with the batch.
        """
        tools = self._normalize_tools(tools)
        if len(items) > self.queue_size - self._queue.qsize():
            self.stats["rejected_queue_full"] += 1
            obs.add("service.queue_rejections", 1)
            raise QueueFullError(
                f"batch of {len(items)} exceeds remaining queue "
                f"capacity", retry_after=max(1.0, (self.timeout or 1.0)))
        batch_id = hashlib.sha256(
            b"\x00".join(content_digest(d).encode() for d in items)
            + f"\x00{tenant}\x00{','.join(tools)}".encode()
        ).hexdigest()[:16]
        batch = Batch(batch_id=batch_id, job_ids=[],
                      created_at=self.clock())
        jobs: list[Job] = []
        fresh: list[Job] = []
        fresh_images: list[bytes] = []
        for data in items:
            job, created = self.submit(
                data, tenant=tenant, tools=tools, batch_id=batch_id)
            jobs.append(job)
            batch.job_ids.append(job.job_id)
            if created and job.status == JOB_QUEUED:
                fresh.append(job)
                fresh_images.append(data)
        if fresh and shm.available():
            arena, refs = shm.share_images(fresh_images)
            batch.arena = arena
            batch.pending = len(fresh)
            for job, ref in zip(fresh, refs):
                self._refs[job.job_id] = ref
        self._batches[batch_id] = batch
        obs.add("service.batches", 1)
        return batch, jobs

    # -- execution -----------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job_id = await self._queue.get()
            job = self._jobs.get(job_id)
            if job is None or job.status not in (JOB_QUEUED,):
                continue
            await self._run_job(job)

    async def _run_job(self, job: Job) -> None:
        """Drive one job to a terminal state, surviving worker losses.

        A lost worker (crash, blown deadline, wedge) is retried
        *inline* on the freshly respawned worker — re-enqueueing would
        deadlock this very consumer on a full queue — until the job
        accumulates ``poison_threshold`` losses and is poisoned.
        """
        job.status = JOB_RUNNING
        while True:
            try:
                analysis = await self._dispatch(job)
            except asyncio.CancelledError:
                # Graceful shutdown mid-job: back to queued so the
                # status endpoint tells the truth; the journal already
                # guarantees a restart re-runs it.
                job.status = JOB_QUEUED
                raise
            except WorkerLostError as exc:
                if (exc.reason == REASON_SHUTDOWN
                        or self.health == HEALTH_DRAINING):
                    job.status = JOB_QUEUED
                    return
                job.crashes += 1
                if job.crashes >= self.poison_threshold:
                    self._poison(job, exc)
                    return
                self.stats["crash_retries"] += 1
                obs.add("service.crash_retries", 1)
                log.warn(
                    "service.crash_retry_log",
                    f"job {job.job_id} lost its worker "
                    f"({exc.reason}, loss {job.crashes}/"
                    f"{self.poison_threshold}); retrying on a fresh "
                    f"worker")
                continue
            except Exception as exc:
                self._fail(job, exc)
                return
            else:
                self._finish(job, analysis)
                return

    def _budget(self, job: Job) -> float | None:
        """Worst-case wall clock for one job, for the supervisor.

        Each of the parse cell and per-tool detect cells may burn the
        full per-cell timeout across all retry attempts; the supervisor
        adds its own ``backstop`` grace on top of this.
        """
        if self.timeout is None or self.timeout <= 0:
            return None
        cells = len(job.tools) + 1
        return self.timeout * (self.retries + 1) * cells

    async def _dispatch(self, job: Job) -> ImageAnalysis:
        """Ship one job body to the executor and await the result."""
        payload: dict = {
            "tools": job.tools,
            "tenant": job.tenant,
            "timeout": self.timeout,
            "retries": self.retries,
        }
        ref = self._refs.get(job.job_id)
        if ref is not None:
            payload["ref"] = ref
        else:
            payload["blob"] = str(self._blob_path(job.sha256))
        if self.isolation == "process":
            # Workers attach the per-tenant cache namespace in their
            # own process; a live DiskCache handle is not shipped.
            if self.cache_root is not None:
                payload["cache_root"] = str(self.cache_root)
            payload["use_default_cache"] = self.cache_root is None
            future = self._executor.submit_task(
                execute_payload, payload, budget=self._budget(job))
        else:
            payload["cache"] = self.cache_for(job.tenant)
            payload["use_default_cache"] = self.cache_root is None
            future = self._executor.submit(execute_payload, payload)
        return await asyncio.wrap_future(future)

    def _finish(self, job: Job, analysis: ImageAnalysis) -> None:
        job.analysis = analysis
        job.receipt = build_receipt(job, analysis, resumed=job.resumed,
                                    clock=self.clock)
        job.completed_at = self.clock()
        job.status = JOB_DONE
        job.error = None
        self.stats["completed"] += 1
        obs.add("service.jobs_completed", 1)
        try:
            self._journal.append({
                "kind": "job-completed",
                "job": job.job_id,
                "analysis": analysis.to_doc(),
                "receipt": job.receipt,
                "at": job.completed_at,
            })
        except JournalWriteError as exc:
            # The result stands in memory; only restart durability is
            # degraded. Surface it rather than failing the job.
            log.warn("service.journal_write_errors",
                     f"job {job.job_id} completion not journaled: {exc}")
            if _is_enospc(exc):
                self._enter_degraded(f"storage full: {exc}")
        self._release_batch(job)

    def _fail(self, job: Job, error: BaseException) -> None:
        job.status = JOB_FAILED
        job.error = f"{type(error).__name__}: {error}"
        job.completed_at = self.clock()
        self.stats["failed"] += 1
        obs.add("service.jobs_failed", 1)
        # Permanent taxonomy kinds are journaled terminal so a restart
        # does not re-run a job that can only fail the same way again;
        # transient failures stay un-journaled (retry on resume).
        if is_permanent_failure(error):
            self._journal_terminal("job-failed", job,
                                   error_type=type(error).__name__)
        self._release_batch(job)

    def _poison(self, job: Job, error: BaseException) -> None:
        """Permanently fail a job that kept killing its workers.

        The input bytes are quarantined for offline replay and a
        ``job-poisoned`` journal line makes the verdict durable — a
        restarted server must never feed this input to a worker again.
        """
        job.status = JOB_FAILED
        job.poisoned = True
        job.error = (f"poisoned after {job.crashes} worker losses "
                     f"({type(error).__name__}: {error})")
        job.completed_at = self.clock()
        self.stats["poisoned"] += 1
        self.stats["failed"] += 1
        obs.add("service.jobs_poisoned", 1)
        obs.add("service.jobs_failed", 1)
        data: bytes | None = None
        ref = self._refs.get(job.job_id)
        try:
            if ref is not None:
                data = ref.fetch()
            else:
                data = self._blob_path(job.sha256).read_bytes()
        except OSError:
            data = None
        if data is not None:
            entry = self._quarantine.capture_job(
                data, job_id=job.job_id, tenant=job.tenant,
                tools=job.tools, error=error, attempts=job.crashes)
            if entry is not None:
                job.quarantined = str(entry)
        self._journal_terminal(
            "job-poisoned", job, error_type=type(error).__name__,
            extra={"crashes": job.crashes, "quarantine": job.quarantined})
        log.warn("service.poisoned_log",
                 f"job {job.job_id} poisoned after {job.crashes} worker "
                 f"losses; input quarantined at "
                 f"{job.quarantined or '<not captured>'}")
        self._release_batch(job)

    def _journal_terminal(
        self, kind: str, job: Job, *,
        error_type: str, extra: dict | None = None,
    ) -> None:
        record = {
            "kind": kind,
            "job": job.job_id,
            "error": job.error,
            "error_type": error_type,
            "at": job.completed_at,
        }
        if extra:
            record.update(extra)
        try:
            self._journal.append(record)
        except JournalWriteError as exc:
            log.warn("service.journal_write_errors",
                     f"job {job.job_id} terminal {kind!r} record not "
                     f"journaled: {exc}")
            if _is_enospc(exc):
                self._enter_degraded(f"storage full: {exc}")

    def _release_batch(self, job: Job) -> None:
        self._refs.pop(job.job_id, None)
        if job.batch_id is None:
            return
        batch = self._batches.get(job.batch_id)
        if batch is None or batch.arena is None:
            return
        batch.pending -= 1
        if batch.pending <= 0:
            batch.arena.destroy()
            batch.arena = None

    # -- durability ----------------------------------------------------------

    def _blob_path(self, sha256: str) -> Path:
        return self.blobs_dir / f"{sha256}.bin"

    def _write_blob(self, sha256: str, data: bytes) -> None:
        path = self._blob_path(sha256)
        if path.is_file():
            return
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)

    def _journal_submitted(self, job: Job) -> None:
        self._journal.append({
            "kind": "job-submitted",
            "job": job.job_id,
            "tenant": job.tenant,
            "sha256": job.sha256,
            "size": job.size_bytes,
            "tools": list(job.tools),
            "at": job.submitted_at,
        })
