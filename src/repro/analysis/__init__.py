"""The paper's §III study: end-branch locations and function properties."""

from repro.analysis.dataset_stats import DatasetStats, dataset_stats
from repro.analysis.endbr_locations import (
    EndbrDistribution,
    EndbrLocation,
    classify_endbr_locations,
)
from repro.analysis.function_props import (
    ALL_REGIONS,
    CALL,
    ENDBR,
    JMP,
    PropertyVenn,
    analyze_function_properties,
)
from repro.analysis.groundtruth import (
    extract_ground_truth,
    ground_truth_from_dwarf,
    ground_truth_from_symbols,
    is_fragment_name,
)
from repro.analysis.ibt_audit import (
    IbtAuditReport,
    IbtViolation,
    TargetSource,
    audit_ibt,
)

__all__ = [
    "ALL_REGIONS",
    "DatasetStats",
    "dataset_stats",
    "CALL",
    "ENDBR",
    "EndbrDistribution",
    "EndbrLocation",
    "JMP",
    "PropertyVenn",
    "IbtAuditReport",
    "IbtViolation",
    "TargetSource",
    "analyze_function_properties",
    "audit_ibt",
    "classify_endbr_locations",
    "extract_ground_truth",
    "ground_truth_from_dwarf",
    "ground_truth_from_symbols",
    "is_fragment_name",
]
