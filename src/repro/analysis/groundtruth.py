"""Ground-truth extraction (paper §V-A1).

Two sources are supported:

1. **Synthetic binaries** carry exact ground truth from the linker.
2. **Real binaries** (compiled with ``-g`` / unstripped): function
   entries come from ``.symtab`` ``STT_FUNC`` symbols, with the paper's
   corrections applied — ``.cold`` / ``.part`` fragment symbols are
   excluded because they are parts of functions, not functions.
"""

from __future__ import annotations

import re

from repro.elf.parser import ELFFile

#: GCC fragment-name suffixes excluded from ground truth (§V-A1).
_FRAGMENT_RE = re.compile(r"\.(cold|part\.\d+|constprop\.\d+\.cold)$")


def is_fragment_name(name: str) -> bool:
    """Whether a symbol name denotes a ``.cold`` / ``.part`` fragment.

    >>> is_fragment_name("sort_files.part.0")
    True
    >>> is_fragment_name("quick_sort.cold")
    True
    >>> is_fragment_name("main")
    False
    """
    return bool(_FRAGMENT_RE.search(name))


def ground_truth_from_dwarf(elf: ELFFile) -> set[int]:
    """Function entries from DWARF debug info (the paper's primary
    ground-truth channel, §V-A1).

    ``DW_TAG_subprogram`` DIEs are taken as functions except the
    ``.cold`` / ``.part`` outlined fragments, which carry a suffixed
    name but are parts of functions. Returns an empty set for binaries
    without debug info.
    """
    from repro.elf.dwarf import parse_subprograms

    txt = elf.section(".text")
    out: set[int] = set()
    for sub in parse_subprograms(elf):
        if sub.low_pc == 0:
            continue
        if txt is not None and not txt.contains_addr(sub.low_pc):
            continue
        if is_fragment_name(sub.name):
            continue
        out.add(sub.low_pc)
    return out


def extract_ground_truth(elf: ELFFile) -> set[int]:
    """Full §V-A1 ground-truth policy for an unstripped binary.

    DWARF subprograms are the primary source (falling back to the
    symbol table when no debug info is present), fragment names are
    excluded, and the ``__x86.get_pc_thunk`` intrinsics the compiler
    sometimes leaves out of the debug info are re-included from the
    symbol table — the paper's manual correction.
    """
    truth = ground_truth_from_dwarf(elf)
    if not truth:
        truth = ground_truth_from_symbols(elf)
    txt = elf.section(".text")
    for sym in elf.symbols():
        if not sym.name.startswith("__x86.get_pc_thunk"):
            continue
        if not sym.is_defined or sym.value == 0:
            continue
        if txt is not None and not txt.contains_addr(sym.value):
            continue
        truth.add(sym.value)
    if not elf.is64 and txt is not None:
        truth.update(_thunk_call_targets(elf, txt))
    return truth


#: ``mov (%esp), %reg; ret`` — the get_pc_thunk body, for every target
#: register (the middle byte selects the register).
_THUNK_BODIES = {
    bytes([0x8B, modrm, 0x24, 0xC3])
    for modrm in (0x04, 0x0C, 0x14, 0x1C, 0x2C, 0x34, 0x3C)
}


def _thunk_call_targets(elf: ELFFile, txt) -> set[int]:
    """Call targets whose body is a PC-materialization thunk.

    Compilers sometimes emit ``__x86.get_pc_thunk`` without any symbol
    or debug record; the paper recovers those manually by following the
    call from ``_start``. We recover them mechanically: any direct-call
    target whose body is exactly the thunk instruction pair is one.
    """
    from repro.core.disassemble import disassemble

    sweep = disassemble(txt.data, txt.sh_addr, 32)
    found: set[int] = set()
    for target in sweep.call_targets:
        offset = target - txt.sh_addr
        if txt.data[offset : offset + 4] in _THUNK_BODIES:
            found.add(target)
    return found


def ground_truth_from_symbols(elf: ELFFile) -> set[int]:
    """Function entry addresses per the paper's ground-truth policy.

    Takes defined ``STT_FUNC`` symbols inside ``.text``, excluding
    fragment symbols. (The ``__x86.get_pc_thunk`` correction only
    applies to symbols compilers *omit*; symbol-based extraction cannot
    recover those, which is exactly why the synthetic corpus carries
    linker ground truth.)
    """
    txt = elf.section(".text")
    out: set[int] = set()
    for sym in elf.symbols():
        if not sym.is_function or not sym.is_defined:
            continue
        if sym.value == 0:
            continue
        if txt is not None and not txt.contains_addr(sym.value):
            continue
        if is_fragment_name(sym.name):
            continue
        out.add(sym.value)
    return out
