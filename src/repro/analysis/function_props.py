"""Function syntactic-property analysis — the paper's Figure 3 (§III-C).

For every ground-truth function, three properties are evaluated:

- ``EndBrAtHead`` — an end-branch instruction sits at the entry;
- ``DirCallTarget`` — some direct call targets the entry;
- ``DirJmpTarget`` — some direct unconditional jump targets the entry.

The Venn-region counts over these properties are what Figure 3 plots;
the paper's headline numbers are ~89.3% EndBrAtHead and ~0.01% of
functions with no property at all (dead code).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.disassemble import disassemble
from repro.elf import constants as C
from repro.elf.parser import ELFFile

#: Region keys: frozensets of property names.
ENDBR = "EndBrAtHead"
CALL = "DirCallTarget"
JMP = "DirJmpTarget"

ALL_REGIONS = [
    frozenset(),
    frozenset({ENDBR}),
    frozenset({CALL}),
    frozenset({JMP}),
    frozenset({ENDBR, CALL}),
    frozenset({ENDBR, JMP}),
    frozenset({CALL, JMP}),
    frozenset({ENDBR, CALL, JMP}),
]


@dataclass
class PropertyVenn:
    """Counts of functions per property combination."""

    counts: dict[frozenset, int] = field(
        default_factory=lambda: {region: 0 for region in ALL_REGIONS}
    )

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, region: frozenset) -> float:
        total = self.total
        return self.counts[region] / total if total else 0.0

    def with_property(self, prop: str) -> int:
        """Functions holding ``prop`` (any combination containing it)."""
        return sum(c for region, c in self.counts.items() if prop in region)

    def any_property(self) -> int:
        return self.total - self.counts[frozenset()]

    def merge(self, other: "PropertyVenn") -> None:
        for region, count in other.counts.items():
            self.counts[region] += count


def analyze_function_properties(
    elf: ELFFile, function_starts: set[int]
) -> PropertyVenn:
    """Compute the Figure-3 property Venn for one binary."""
    venn = PropertyVenn()
    txt = elf.section(C.SECTION_TEXT)
    if txt is None or not txt.data:
        return venn
    bits = 64 if elf.is64 else 32
    sweep = disassemble(txt.data, txt.sh_addr, bits)

    for addr in function_starts:
        props = set()
        if addr in sweep.endbr_addrs:
            props.add(ENDBR)
        if addr in sweep.call_targets:
            props.add(CALL)
        if addr in sweep.jump_targets:
            props.add(JMP)
        venn.counts[frozenset(props)] += 1
    return venn
