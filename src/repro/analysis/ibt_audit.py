"""IBT compliance auditing (paper §II background, applied).

Under CET Indirect Branch Tracking, every indirect ``jmp``/``call``
must land on an end-branch instruction or the CPU raises a
control-protection fault. This module statically audits a binary for
violations: it collects every statically visible indirect-branch-target
candidate and checks that the destination starts with ``endbr``.

Candidate sources:

- address-materialization operands (``lea``/``mov $imm``/``push $imm``
  pointing into ``.text``) — classic address-taking;
- function pointers stored in data sections (vtables, callback
  tables) — scanned word-wise against the ``.text`` range;
- exception landing pads (reached indirectly by the unwinder).

NOTRACK-prefixed jumps are exempt by architecture (Fig. 1b), which is
why jump-table case labels never need markers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.disassemble import disassemble
from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import InsnClass

#: Data sections scanned for stored code pointers.
_POINTER_SECTIONS = (".data", ".data.rel.ro", ".rodata", ".init_array",
                     ".fini_array")

_XREF_CLASSES = frozenset(
    {InsnClass.LEA, InsnClass.MOV_IMM, InsnClass.PUSH_IMM}
)


class TargetSource(enum.Enum):
    CODE_XREF = "code-xref"
    DATA_POINTER = "data-pointer"
    LANDING_PAD = "landing-pad"


@dataclass(frozen=True)
class IbtViolation:
    """One indirect-branch target lacking its end-branch marker."""

    target: int
    source: TargetSource


@dataclass
class IbtAuditReport:
    """Result of auditing one binary."""

    candidates: dict[int, TargetSource] = field(default_factory=dict)
    violations: list[IbtViolation] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.violations

    @property
    def candidate_count(self) -> int:
        return len(self.candidates)


def audit_ibt(elf: ELFFile) -> IbtAuditReport:
    """Audit a CET binary for IBT landing-marker violations."""
    report = IbtAuditReport()
    txt = elf.section(C.SECTION_TEXT)
    if txt is None or not txt.data:
        return report
    bits = 64 if elf.is64 else 32

    for addr in _code_xref_targets(txt, bits, pie=elf.header.is_pie):
        report.candidates.setdefault(addr, TargetSource.CODE_XREF)
    for addr in _data_pointer_targets(elf, txt):
        report.candidates.setdefault(addr, TargetSource.DATA_POINTER)
    for addr in _landing_pads(elf):
        report.candidates.setdefault(addr, TargetSource.LANDING_PAD)

    for addr, source in sorted(report.candidates.items()):
        if not _has_endbr(txt, addr, bits):
            report.violations.append(IbtViolation(addr, source))
    return report


def _code_xref_targets(txt, bits: int, *, pie: bool) -> set[int]:
    """Address-materialization targets.

    In position-independent code, absolute immediates are constants,
    not pointers — only RIP-relative LEAs count there (the same rule
    the IDA-like baseline applies).
    """
    sweep_data = txt.data
    base = txt.sh_addr
    end = base + len(sweep_data)
    classes = {InsnClass.LEA} if pie else _XREF_CLASSES
    out: set[int] = set()
    offset = 0
    while offset < len(sweep_data):
        try:
            insn = decode(sweep_data, offset, base + offset, bits)
        except DecodeError:
            offset += 1
            continue
        offset += insn.length
        if insn.klass in classes and insn.target is not None:
            if base <= insn.target < end:
                out.add(insn.target)
    return out


def _data_pointer_targets(elf: ELFFile, txt) -> set[int]:
    word = 8 if elf.is64 else 4
    lo, hi = txt.sh_addr, txt.end_addr
    out: set[int] = set()
    for name in _POINTER_SECTIONS:
        sec = elf.section(name)
        if sec is None or not sec.data:
            continue
        data = sec.data
        for off in range(0, len(data) - word + 1, word):
            value = int.from_bytes(data[off : off + word], "little")
            if lo <= value < hi:
                out.add(value)
    return out


def _landing_pads(elf: ELFFile) -> set[int]:
    eh = elf.section(C.SECTION_EH_FRAME)
    get = elf.section(C.SECTION_GCC_EXCEPT_TABLE)
    if eh is None or get is None:
        return set()
    try:
        frames = parse_eh_frame(eh.data, eh.sh_addr, elf.is64)
    except EhFrameError:
        return set()
    return landing_pads_from_exception_info(
        frames, get.data, get.sh_addr, elf.is64)


def _has_endbr(txt, addr: int, bits: int) -> bool:
    try:
        insn = decode(txt.data, addr - txt.sh_addr, addr, bits)
    except DecodeError:
        return False
    return insn.is_endbr
