"""Corpus composition statistics (the paper's §III-A dataset account).

The paper describes its dataset before studying it: programs per
suite, configurations per program, binary counts, and the function
total its ground truth extracts (11,209,121 functions across 8,136
binaries). This module computes the same account for a synthetic
corpus, so every experiment's denominator is inspectable.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.elf.parser import ELFFile
from repro.synth.corpus import CorpusEntry


@dataclass
class SuiteStats:
    """Aggregates for one benchmark suite."""

    binaries: int = 0
    programs: set[str] = field(default_factory=set)
    functions: int = 0
    fragments: int = 0
    text_bytes: int = 0
    cxx_binaries: int = 0


@dataclass
class DatasetStats:
    """Whole-corpus account."""

    suites: dict[str, SuiteStats] = field(default_factory=dict)
    configurations: set[str] = field(default_factory=set)

    @property
    def total_binaries(self) -> int:
        return sum(s.binaries for s in self.suites.values())

    @property
    def total_functions(self) -> int:
        return sum(s.functions for s in self.suites.values())

    def render(self) -> str:
        lines = [
            "DATASET (§III-A account; paper: 8,136 binaries / "
            "11,209,121 functions)",
            f"{'suite':12s} {'programs':>8s} {'binaries':>8s} "
            f"{'functions':>9s} {'fragments':>9s} {'text':>9s} "
            f"{'C++':>5s}",
        ]
        for name in sorted(self.suites):
            s = self.suites[name]
            lines.append(
                f"{name:12s} {len(s.programs):8d} {s.binaries:8d} "
                f"{s.functions:9d} {s.fragments:9d} "
                f"{s.text_bytes / 1e6:7.1f}MB {s.cxx_binaries:5d}"
            )
        lines.append(
            f"{'total':12s} "
            f"{sum(len(s.programs) for s in self.suites.values()):8d} "
            f"{self.total_binaries:8d} {self.total_functions:9d}"
        )
        lines.append(f"configurations: {len(self.configurations)}")
        return "\n".join(lines)


def dataset_stats(corpus: Iterable[CorpusEntry]) -> DatasetStats:
    """Compute the dataset account for a corpus."""
    stats = DatasetStats()
    for entry in corpus:
        suite = stats.suites.setdefault(entry.suite, SuiteStats())
        suite.binaries += 1
        suite.programs.add(entry.program)
        gt = entry.binary.ground_truth
        suite.functions += len(gt.function_starts)
        suite.fragments += len(gt.fragment_starts)
        stats.configurations.add(entry.profile.config_name)
        elf = ELFFile(entry.binary.data)
        txt = elf.section(".text")
        if txt is not None:
            suite.text_bytes += txt.sh_size
        if elf.section(".gcc_except_table") is not None:
            suite.cxx_binaries += 1
    return stats
