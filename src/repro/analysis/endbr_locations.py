"""End-branch location classification — the paper's Table I study (§III-B).

Every end-branch instruction found by linear sweep is attributed to one
of the three locations the paper identifies:

- **function entry** — the address is a ground-truth function start;
- **indirect return** — the end-branch directly follows a call to an
  indirect-return function (``setjmp`` family, Fig. 2a);
- **exception** — the address is an exception landing pad (Fig. 2b).

Anything else is counted as ``other`` (the paper found none; a non-zero
value flags a generator or analysis bug).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.disassemble import disassemble
from repro.core.filter_endbr import follows_indirect_return_call
from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile
from repro.elf.plt import build_plt_map


class EndbrLocation(enum.Enum):
    FUNCTION_ENTRY = "function_entry"
    INDIRECT_RETURN = "indirect_return"
    EXCEPTION = "exception"
    OTHER = "other"


@dataclass
class EndbrDistribution:
    """Counts of end-branch instructions per location class."""

    counts: dict[EndbrLocation, int] = field(
        default_factory=lambda: {loc: 0 for loc in EndbrLocation}
    )

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, loc: EndbrLocation) -> float:
        total = self.total
        return self.counts[loc] / total if total else 0.0

    def merge(self, other: "EndbrDistribution") -> None:
        for loc, count in other.counts.items():
            self.counts[loc] += count


def classify_endbr_locations(
    elf: ELFFile, function_starts: set[int]
) -> EndbrDistribution:
    """Classify every end-branch in ``.text`` against the ground truth."""
    dist = EndbrDistribution()
    txt = elf.section(C.SECTION_TEXT)
    if txt is None or not txt.data:
        return dist
    bits = 64 if elf.is64 else 32
    sweep = disassemble(txt.data, txt.sh_addr, bits)
    plt_map = build_plt_map(elf)
    landing_pads = _landing_pads(elf)

    for addr in sweep.endbr_addrs:
        if addr in function_starts:
            loc = EndbrLocation.FUNCTION_ENTRY
        elif addr in landing_pads:
            loc = EndbrLocation.EXCEPTION
        elif follows_indirect_return_call(sweep, plt_map, addr):
            loc = EndbrLocation.INDIRECT_RETURN
        else:
            loc = EndbrLocation.OTHER
        dist.counts[loc] += 1
    return dist


def _landing_pads(elf: ELFFile) -> set[int]:
    except_sec = elf.section(C.SECTION_GCC_EXCEPT_TABLE)
    eh_sec = elf.section(C.SECTION_EH_FRAME)
    if except_sec is None or eh_sec is None:
        return set()
    try:
        eh = parse_eh_frame(eh_sec.data, eh_sec.sh_addr, elf.is64)
    except EhFrameError:
        return set()
    return landing_pads_from_exception_info(
        eh, except_sec.data, except_sec.sh_addr, elf.is64
    )
