"""Executable CET semantics: IBT + shadow-stack enforcement simulation."""

from repro.cet.enforcement import (
    CetFault,
    CetMachine,
    FaultKind,
    TraceReport,
    simulate_enforcement,
)

__all__ = [
    "CetFault",
    "CetMachine",
    "FaultKind",
    "TraceReport",
    "simulate_enforcement",
]
