"""Trace-based CET enforcement simulation (paper §II, executable).

The paper's background describes CET's two mechanisms: the Shadow
Stack (SS) protects return edges by keeping duplicate return addresses;
Indirect Branch Tracking (IBT) requires every indirect branch to land
on an end-branch instruction. This module *executes* those rules over
a binary's recovered control flow:

- direct control flow is walked through the CFG (depth-first, bounded);
- each ``call`` pushes its fall-through address onto the simulated
  shadow stack alongside the architectural return address — a ``ret``
  must find them equal;
- each simulated indirect transfer (dispatched through the binary's
  function-pointer table, as the loader/runtime would) must land on an
  end-branch or an **IBT fault** is recorded, exactly where the CPU's
  ``#CP`` exception would fire.

On a correctly built binary the trace completes with zero faults; on a
binary whose markers were stripped (the generator's ``ibt_violations``
knob) the simulator reports each faulting transfer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cfg import recover_program_cfg
from repro.core.funseeker import FunSeeker
from repro.elf import constants as C
from repro.elf.parser import ELFFile
from repro.x86.decoder import DecodeError, decode
from repro.x86.insn import InsnClass

#: Exploration bound: total simulated control transfers.
MAX_STEPS = 200_000
#: Simulated call-stack depth bound (recursion guard).
MAX_DEPTH = 64


class FaultKind(enum.Enum):
    IBT = "control-protection (#CP): indirect branch to non-endbr"
    SHADOW_STACK = "control-protection (#CP): return address mismatch"


@dataclass(frozen=True)
class CetFault:
    """One simulated control-protection exception."""

    kind: FaultKind
    site: int      # address of the faulting transfer instruction
    target: int    # where control would have gone


@dataclass
class TraceReport:
    """Result of one enforcement simulation."""

    faults: list[CetFault] = field(default_factory=list)
    transfers: int = 0
    calls_simulated: int = 0
    indirect_dispatches: int = 0
    max_shadow_depth: int = 0

    @property
    def clean(self) -> bool:
        return not self.faults


class CetMachine:
    """The IBT + shadow-stack state machine over one binary."""

    def __init__(self, elf: ELFFile) -> None:
        self.elf = elf
        txt = elf.section(C.SECTION_TEXT)
        if txt is None:
            raise ValueError("binary has no .text")
        self.txt = txt
        self.bits = 64 if elf.is64 else 32
        result = FunSeeker(elf).identify()
        self.functions = result.functions
        self.program = recover_program_cfg(elf, self.functions)
        self.report = TraceReport()
        self._seen_calls: set[tuple[int, int]] = set()

    # -- the two CET rules ---------------------------------------------------

    def _is_endbr(self, addr: int) -> bool:
        try:
            insn = decode(self.txt.data, addr - self.txt.sh_addr, addr,
                          self.bits)
        except DecodeError:
            return False
        return insn.is_endbr

    def check_indirect(self, site: int, target: int) -> bool:
        """IBT rule: an indirect transfer must land on endbr."""
        self.report.indirect_dispatches += 1
        if not self._is_endbr(target):
            self.report.faults.append(
                CetFault(FaultKind.IBT, site, target))
            return False
        return True

    def check_return(self, site: int, arch_ret: int,
                     shadow_ret: int) -> bool:
        """SS rule: architectural and shadow return addresses match."""
        if arch_ret != shadow_ret:
            self.report.faults.append(
                CetFault(FaultKind.SHADOW_STACK, site, arch_ret))
            return False
        return True

    # -- trace ------------------------------------------------------------------

    def run(self, entry: int | None = None) -> TraceReport:
        """Simulate from ``entry`` (default: the ELF entry point), then
        dispatch every stored function pointer as the runtime would."""
        if entry is None:
            entry = self.elf.header.e_entry
        if self.txt.contains_addr(entry):
            self._trace_function(entry, depth=0)

        # Indirect dispatches through data-stored function pointers
        # (vtables / callback tables): the IBT check fires at dispatch.
        for target in self._stored_pointers():
            if self.report.transfers >= MAX_STEPS:
                break
            if self.check_indirect(site=0, target=target):
                self._trace_function(target, depth=0)
        return self.report

    def _stored_pointers(self) -> list[int]:
        word = 8 if self.elf.is64 else 4
        lo, hi = self.txt.sh_addr, self.txt.end_addr
        out = []
        for name in (".data.rel.ro", ".data", ".rodata"):
            sec = self.elf.section(name)
            if sec is None:
                continue
            data = sec.data
            for off in range(0, len(data) - word + 1, word):
                value = int.from_bytes(data[off : off + word], "little")
                if lo <= value < hi:
                    out.append(value)
        return out

    def _trace_function(self, entry: int, depth: int) -> None:
        """Walk one function's CFG, simulating calls with the shadow
        stack. Each (caller-site, callee) pair is expanded once — enough
        to visit every call edge without exponential blowup."""
        if depth > MAX_DEPTH:
            return
        cfg = self.program.functions.get(entry)
        if cfg is None:
            return
        self.report.max_shadow_depth = max(
            self.report.max_shadow_depth, depth)
        for block in cfg.blocks.values():
            for insn in block.insns:
                if self.report.transfers >= MAX_STEPS:
                    return
                if insn.klass == InsnClass.CALL_DIRECT \
                        and insn.target is not None \
                        and insn.target in self.functions:
                    key = (insn.addr, insn.target)
                    if key in self._seen_calls:
                        continue
                    self._seen_calls.add(key)
                    self.report.transfers += 1
                    self.report.calls_simulated += 1
                    # Push both stacks; the callee's ret pops them.
                    arch_ret = insn.end
                    shadow_ret = insn.end
                    self._trace_function(insn.target, depth + 1)
                    self.check_return(insn.addr, arch_ret, shadow_ret)


def simulate_enforcement(elf: ELFFile) -> TraceReport:
    """Convenience wrapper: build the machine and run the trace."""
    return CetMachine(elf).run()
