"""AArch64 BTI extension (paper §VI future work)."""

from repro.arm.decoder import A64Class, A64Insn, classify_word, sweep
from repro.arm.funseeker_bti import BtiResult, identify_functions_bti
from repro.arm.synth import (
    A64Binary,
    A64Function,
    generate_bti_program,
    link_bti_program,
)

__all__ = [
    "A64Binary",
    "A64Class",
    "A64Function",
    "A64Insn",
    "BtiResult",
    "classify_word",
    "generate_bti_program",
    "identify_functions_bti",
    "link_bti_program",
    "sweep",
]
