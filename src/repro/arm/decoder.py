"""AArch64 instruction classification for BTI-aware function detection.

The paper (§VI) argues FunSeeker's algorithm transfers directly to ARM
binaries because BTI (Branch Target Identification) landing markers
behave like Intel's end-branch instructions. AArch64 instructions are
fixed-width 32-bit words, so "disassembly" reduces to word-wise
classification — no length decoding needed.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass


class A64Class(enum.IntEnum):
    OTHER = 0
    BTI = 1            # bti / bti c / bti j / bti jc
    BL = 2             # direct call
    B = 3              # direct unconditional branch
    B_COND = 4         # conditional branch
    BR = 5             # indirect branch
    BLR = 6            # indirect call
    RET = 7
    ADRP = 8           # page-address materialization (address-taking)
    NOP = 9


@dataclass(slots=True)
class A64Insn:
    """One classified AArch64 instruction word."""

    addr: int
    word: int
    klass: A64Class
    target: int | None = None

    @property
    def length(self) -> int:
        return 4


def classify_word(word: int, addr: int) -> A64Insn:
    """Classify one 32-bit instruction word at ``addr``."""
    # BTI: HINT space, CRm=0b0010, op2 in {010,011,110,111}<<... —
    # encodings D503241F / D503245F / D503249F / D50324DF.
    if word & 0xFFFFFF3F == 0xD503241F:
        return A64Insn(addr, word, A64Class.BTI)
    if word == 0xD503201F:
        return A64Insn(addr, word, A64Class.NOP)

    top6 = word >> 26
    if top6 == 0b100101:  # BL imm26
        return A64Insn(addr, word, A64Class.BL,
                       target=_rel26_target(word, addr))
    if top6 == 0b000101:  # B imm26
        return A64Insn(addr, word, A64Class.B,
                       target=_rel26_target(word, addr))
    if word & 0xFF000010 == 0x54000000:  # B.cond imm19
        imm19 = (word >> 5) & 0x7FFFF
        if imm19 & (1 << 18):
            imm19 -= 1 << 19
        return A64Insn(addr, word, A64Class.B_COND,
                       target=(addr + imm19 * 4) & _MASK)
    if word & 0xFFFFFC1F == 0xD61F0000:
        return A64Insn(addr, word, A64Class.BR)
    if word & 0xFFFFFC1F == 0xD63F0000:
        return A64Insn(addr, word, A64Class.BLR)
    if word & 0xFFFFFC1F == 0xD65F0000:
        return A64Insn(addr, word, A64Class.RET)
    if word & 0x9F000000 == 0x90000000:
        return A64Insn(addr, word, A64Class.ADRP)
    return A64Insn(addr, word, A64Class.OTHER)


_MASK = (1 << 64) - 1


def _rel26_target(word: int, addr: int) -> int:
    imm26 = word & 0x3FFFFFF
    if imm26 & (1 << 25):
        imm26 -= 1 << 26
    return (addr + imm26 * 4) & _MASK


def sweep(data: bytes, base_addr: int) -> list[A64Insn]:
    """Classify every aligned word of an AArch64 code buffer."""
    out = []
    for i, (word,) in enumerate(struct.iter_unpack("<I", data[: len(data) & ~3])):
        out.append(classify_word(word, base_addr + i * 4))
    return out
