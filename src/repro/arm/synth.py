"""Synthetic BTI-enabled AArch64 binary generator (§VI demonstration).

A compact analogue of the x86 synthetic toolchain: generates ELF
AArch64 executables whose functions follow ``-mbranch-protection=bti``
code generation — a ``bti c`` marker at every indirectly-reachable
entry, ``bl`` call graphs, ``b`` tail calls, and statics reached only
by direct branches.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.elf.writer import ElfWriter, SectionSpec, SymbolSpec
from repro.synth.ir import GroundTruth, GroundTruthEntry

_BTI_C = 0xD503245F
_BTI_J = 0xD503249F
_NOP = 0xD503201F
_RET = 0xD65F03C0
_PACIASP = 0xD503233F

#: A few arithmetic filler words (register-to-register, side-effect free
#: for analysis purposes).
_FILLER = (
    0x91000400,  # add x0, x0, #1
    0x8B010000,  # add x0, x0, x1
    0xCB010000,  # sub x0, x0, x1
    0xAA0103E0,  # mov x0, x1
    0xD2800020,  # mov x0, #1
    0xF9400FE0,  # ldr x0, [sp, #24]
    0xF9000FE0,  # str x0, [sp, #24]
)


@dataclass
class A64Function:
    """One synthetic AArch64 function."""

    name: str
    has_bti: bool
    is_dead: bool = False
    callees: list[str] = field(default_factory=list)
    tail_call_target: str | None = None
    landing_pads: int = 0    # C++ catch blocks (BTI-marked, like x86)
    filler: int = 8


@dataclass
class A64Binary:
    """A synthesized AArch64 ELF image with ground truth."""

    data: bytes
    ground_truth: GroundTruth


def generate_bti_program(
    n_functions: int, seed: int = 0, *, cxx: bool = False
) -> list[A64Function]:
    """Generate a function population mirroring the x86 generator's mix.

    ``cxx`` adds exception landing pads (BTI-j-marked catch blocks) to
    a share of functions — the ARM analogue of the paper's SPEC C++
    phenomenon.
    """
    rng = random.Random(seed)
    funcs = [A64Function(name="main", has_bti=True,
                         filler=rng.randrange(6, 20))]
    for i in range(n_functions):
        roll = rng.random()
        if roll < 0.7:
            fn = A64Function(name=f"fn_{i:04d}", has_bti=True,
                             filler=rng.randrange(4, 24))
        elif roll < 0.97:
            fn = A64Function(name=f"fn_{i:04d}", has_bti=False,
                             filler=rng.randrange(4, 24))
        else:
            fn = A64Function(name=f"fn_{i:04d}", has_bti=False,
                             is_dead=True, filler=rng.randrange(4, 12))
        funcs.append(fn)
    live = [f for f in funcs if not f.is_dead]
    # Direct-call wiring: every live BTI-less function needs a caller.
    for fn in live[1:]:
        if not fn.has_bti or rng.random() < 0.45:
            rng.choice([f for f in live if f is not fn]).callees.append(
                fn.name
            )
    # Shared tail targets.
    for _ in range(max(1, len(live) // 30)):
        target = rng.choice(live)
        sources = [f for f in live
                   if f is not target and f.tail_call_target is None]
        if len(sources) >= 2:
            for src in rng.sample(sources, 2):
                src.tail_call_target = target.name
    if cxx:
        for fn in rng.sample(live, max(1, len(live) // 4)):
            fn.landing_pads = rng.randrange(1, 3)
    return funcs


def link_bti_program(
    funcs: list[A64Function], seed: int = 0
) -> A64Binary:
    """Assemble functions into an AArch64 ELF image."""
    rng = random.Random(seed ^ 0x5BD1)
    base = 0x400000
    text_addr = base + 0x1000

    # First pass: layout (each function's size in words).
    layouts: list[tuple[A64Function, int, list[int], list[int]]] = []
    cursor = 0
    for fn in funcs:
        words: list[int] = []
        if fn.has_bti:
            words.append(_BTI_C)
        words.append(_PACIASP)
        for _ in range(fn.filler):
            words.append(_FILLER[rng.randrange(len(_FILLER))])
        for _ in fn.callees:
            words.append(0)  # bl placeholder
        if fn.tail_call_target:
            words.append(0)  # b placeholder
        else:
            words.append(_RET)
        # Landing pads past the body's return, each starting with a
        # BTI j marker — the AArch64 analogue of Fig. 2b.
        pad_offsets: list[int] = []
        for _ in range(fn.landing_pads):
            pad_offsets.append(len(words))
            words.append(_BTI_J)
            words.append(_FILLER[rng.randrange(len(_FILLER))])
            words.append(_RET)
        # Align to 16 bytes with NOPs.
        while (cursor + len(words)) % 4:
            words.append(_NOP)
        layouts.append((fn, cursor, words, pad_offsets))
        cursor += len(words)

    addr_of = {fn.name: text_addr + off * 4
               for fn, off, _w, _p in layouts}

    # Second pass: resolve bl/b placeholders.
    text_words: list[int] = []
    for fn, off, words, _pads in layouts:
        patched = list(words)
        slot = (2 if fn.has_bti else 1) + fn.filler
        for callee in fn.callees:
            pc = text_addr + (off + slot) * 4
            patched[slot] = _encode_branch(0x94000000, addr_of[callee], pc)
            slot += 1
        if fn.tail_call_target:
            pc = text_addr + (off + slot) * 4
            patched[slot] = _encode_branch(
                0x14000000, addr_of[fn.tail_call_target], pc
            )
        text_words.extend(patched)
    text = struct.pack(f"<{len(text_words)}I", *text_words)

    # Exception metadata for functions with landing pads (same
    # .eh_frame/.gcc_except_table formats as x86).
    from repro.synth.ehwriter import (
        FdeRequest,
        build_eh_frame,
        build_gcc_except_table,
        patch_eh_frame,
    )

    callsites = []
    fde_requests = []
    pad_owner_addrs = []
    for i, (fn, off, words, pads) in enumerate(layouts):
        if not pads:
            continue
        lsda_index = len(callsites)
        callsites.append([(4, 4, pad * 4) for pad in pads])
        fde_requests.append(FdeRequest(
            len(pad_owner_addrs), len(words) * 4,
            lsda_offset=lsda_index))
        pad_owner_addrs.append(text_addr + off * 4)
    except_table, lsda_offsets = build_gcc_except_table(callsites)
    for req in fde_requests:
        req.lsda_offset = lsda_offsets[req.lsda_offset]
    eh_blob = build_eh_frame(fde_requests, personality_addr=0)
    eh_frame_addr = (text_addr + len(text) + 0x107) & ~7
    except_table_addr = (eh_frame_addr + len(eh_blob.data) + 7) & ~3
    eh_frame = patch_eh_frame(eh_blob, eh_frame_addr,
                              except_table_addr, pad_owner_addrs)

    writer = ElfWriter(is64=True, machine=C.EM_AARCH64, pie=False,
                       base_addr=base)
    writer.entry = addr_of[funcs[0].name]
    writer.add_section(SectionSpec(
        name=".text", sh_type=C.SHT_PROGBITS,
        sh_flags=C.SHF_ALLOC | C.SHF_EXECINSTR, data=text,
        sh_addr=text_addr, sh_addralign=4,
    ))
    if fde_requests:
        writer.add_section(SectionSpec(
            name=".eh_frame", sh_type=C.SHT_PROGBITS,
            sh_flags=C.SHF_ALLOC, data=eh_frame,
            sh_addr=eh_frame_addr, sh_addralign=8,
        ))
        writer.add_section(SectionSpec(
            name=".gcc_except_table", sh_type=C.SHT_PROGBITS,
            sh_flags=C.SHF_ALLOC, data=except_table,
            sh_addr=except_table_addr, sh_addralign=4,
        ))
    gt = GroundTruth()
    for fn, off, words, _pads in layouts:
        addr = text_addr + off * 4
        gt.entries.append(GroundTruthEntry(
            name=fn.name, address=addr, size=len(words) * 4,
            is_function=True, has_endbr=fn.has_bti, is_dead=fn.is_dead,
        ))
        writer.add_symbol(SymbolSpec(
            name=fn.name, value=addr, size=len(words) * 4,
            bind=C.STB_GLOBAL, typ=C.STT_FUNC, section=".text",
        ))
    return A64Binary(data=writer.build(), ground_truth=gt)


def _encode_branch(opcode: int, target: int, pc: int) -> int:
    delta = (target - pc) >> 2
    return opcode | (delta & 0x3FFFFFF)
