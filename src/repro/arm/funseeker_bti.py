"""FunSeeker-BTI: the paper's algorithm transferred to AArch64 (§VI).

Identical structure to the x86 pipeline:

- ``E`` — addresses of BTI landing markers (analogous to end-branch);
- ``C`` — direct ``bl`` targets;
- ``J'`` — direct ``b`` targets selected by the same two tail-call
  conditions (escapes the containing function; referenced by multiple
  functions).

AArch64 has no indirect-return end-branch idiom to filter (``setjmp``
returns through ``br`` to a BTI-marked *function* on ARM), so the
FILTERENDBR stage reduces to exception landing pads — which AArch64
describes with the very same ``.eh_frame`` + ``.gcc_except_table``
formats as x86, so the x86 LSDA machinery is reused unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arm.decoder import A64Class, sweep
from repro.core.tailcall import select_tail_calls
from repro.core.disassemble import BranchSite
from repro.elf import constants as C
from repro.elf.ehframe import EhFrameError, parse_eh_frame
from repro.elf.lsda import landing_pads_from_exception_info
from repro.elf.parser import ELFFile


@dataclass
class BtiResult:
    """Output of one FunSeeker-BTI run."""

    functions: set[int]
    bti_addrs: set[int] = field(default_factory=set)
    call_targets: set[int] = field(default_factory=set)
    jump_targets: set[int] = field(default_factory=set)
    tail_call_targets: set[int] = field(default_factory=set)
    landing_pads: set[int] = field(default_factory=set)


def identify_functions_bti(elf: ELFFile) -> BtiResult:
    """Run the BTI-based identification pipeline on an AArch64 binary."""
    if elf.machine != C.EM_AARCH64:
        raise ValueError("identify_functions_bti requires an AArch64 binary")
    txt = elf.section(C.SECTION_TEXT)
    if txt is None or not txt.data:
        return BtiResult(functions=set())

    base = txt.sh_addr
    end = base + len(txt.data)
    bti_addrs: set[int] = set()
    call_targets: set[int] = set()
    call_sites: list[BranchSite] = []
    jump_sites: list[BranchSite] = []
    jump_targets: set[int] = set()

    for insn in sweep(txt.data, base):
        if insn.klass == A64Class.BTI:
            bti_addrs.add(insn.addr)
        elif insn.klass == A64Class.BL and insn.target is not None:
            if base <= insn.target < end:
                call_targets.add(insn.target)
                call_sites.append(BranchSite(insn.addr, insn.target, True))
        elif insn.klass == A64Class.B and insn.target is not None:
            if base <= insn.target < end:
                jump_targets.add(insn.target)
                jump_sites.append(BranchSite(insn.addr, insn.target, False))

    pads = _landing_pads(elf)
    functions = (bti_addrs - pads) | call_targets
    tails = select_tail_calls(
        jump_sites, call_sites, known_entries=functions,
        text_start=base, text_end=end,
    )
    functions |= tails
    return BtiResult(
        functions=functions,
        bti_addrs=bti_addrs,
        call_targets=call_targets,
        jump_targets=jump_targets,
        tail_call_targets=tails,
        landing_pads=pads,
    )


def _landing_pads(elf: ELFFile) -> set[int]:
    eh = elf.section(C.SECTION_EH_FRAME)
    get = elf.section(C.SECTION_GCC_EXCEPT_TABLE)
    if eh is None or get is None:
        return set()
    try:
        frames = parse_eh_frame(eh.data, eh.sh_addr, elf.is64)
    except EhFrameError:
        return set()
    return landing_pads_from_exception_info(
        frames, get.data, get.sh_addr, elf.is64)
