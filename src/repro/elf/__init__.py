"""ELF substrate: parsing, exception metadata, PLT mapping, and writing.

Public entry points:

- :class:`~repro.elf.parser.ELFFile` — read an ELF binary.
- :func:`~repro.elf.ehframe.parse_eh_frame` — CIE/FDE records.
- :func:`~repro.elf.lsda.parse_lsda` — exception landing pads.
- :func:`~repro.elf.plt.build_plt_map` — PLT stub → import name.
- :class:`~repro.elf.writer.ElfWriter` — build ELF images (used by the
  synthetic toolchain).
"""

from repro.elf.parser import ELFFile, ElfParseError, strip_symbols
from repro.elf.ehframe import CIE, FDE, EhFrame, EhFrameError, parse_eh_frame
from repro.elf.ehframehdr import (
    EhFrameHdr,
    EhFrameHdrError,
    build_eh_frame_hdr,
    parse_eh_frame_hdr,
)
from repro.elf.lsda import (
    LSDA,
    CallSite,
    LsdaError,
    landing_pads_from_exception_info,
    parse_lsda,
)
from repro.elf.plt import PLTMap, build_plt_map
from repro.elf.types import (
    ElfHeader,
    Relocation,
    Section,
    Segment,
    Symbol,
)

__all__ = [
    "CIE",
    "FDE",
    "CallSite",
    "ELFFile",
    "EhFrame",
    "EhFrameError",
    "EhFrameHdr",
    "EhFrameHdrError",
    "build_eh_frame_hdr",
    "parse_eh_frame_hdr",
    "ElfHeader",
    "ElfParseError",
    "LSDA",
    "LsdaError",
    "PLTMap",
    "Relocation",
    "Section",
    "Segment",
    "Symbol",
    "build_plt_map",
    "landing_pads_from_exception_info",
    "parse_eh_frame",
    "parse_lsda",
    "strip_symbols",
]
