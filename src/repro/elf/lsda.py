"""Parser for Language-Specific Data Areas in ``.gcc_except_table``.

Each LSDA describes, for one function, the try-region call sites and the
landing pads (catch / cleanup entry points) the personality routine may
transfer control to. Because ``libstdc++`` reaches landing pads with an
indirect jump, CET-enabled compilers place an end-branch instruction at
every landing pad — which is exactly the false-positive source
FunSeeker's ``FILTERENDBR`` removes (paper §III-B3, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.elf.reader import ByteReader, ReaderError
from repro.errors import Diagnostics, ReproError


class LsdaError(ReproError):
    """Raised on malformed LSDA contents."""


@dataclass(frozen=True)
class CallSite:
    """One call-site table record, with addresses resolved."""

    start: int          # absolute address of the region start
    length: int         # region length in bytes
    landing_pad: int    # absolute landing-pad address, 0 if none
    action: int         # action-table offset + 1, 0 if none


@dataclass
class LSDA:
    """A parsed Language-Specific Data Area."""

    address: int
    function_start: int
    lp_start: int
    call_sites: list[CallSite] = field(default_factory=list)

    @property
    def landing_pads(self) -> set[int]:
        """Absolute addresses of all landing pads described by this LSDA."""
        return {cs.landing_pad for cs in self.call_sites if cs.landing_pad}


def parse_lsda(
    section_data: bytes,
    section_addr: int,
    lsda_addr: int,
    function_start: int,
    is64: bool,
) -> LSDA:
    """Parse one LSDA.

    Parameters
    ----------
    section_data / section_addr:
        Contents and virtual address of ``.gcc_except_table``.
    lsda_addr:
        Virtual address of the LSDA (from the FDE augmentation data).
    function_start:
        ``PC begin`` of the owning function; used as the default LPStart
        and as the base for call-site region offsets.
    is64:
        Pointer width for ``DW_EH_PE_absptr``.
    """
    offset = lsda_addr - section_addr
    if offset < 0 or offset >= len(section_data):
        raise LsdaError(
            f"LSDA address {lsda_addr:#x} outside .gcc_except_table"
        )
    r = ByteReader(section_data, offset)
    try:
        lpstart_enc = r.u8()
        if lpstart_enc == C.DW_EH_PE_omit:
            lp_start = function_start
        else:
            value = r.eh_pointer(
                lpstart_enc, pc=section_addr + r.pos, is64=is64
            )
            lp_start = value if value is not None else function_start

        ttype_enc = r.u8()
        if ttype_enc != C.DW_EH_PE_omit:
            r.uleb128()  # ttype table end offset; table itself is skipped

        cs_enc = r.u8()
        cs_table_len = r.uleb128()
        cs_end = r.pos + cs_table_len

        lsda = LSDA(address=lsda_addr, function_start=function_start,
                    lp_start=lp_start)
        while r.pos < cs_end:
            cs_start = _read_cs_value(r, cs_enc, is64)
            cs_len = _read_cs_value(r, cs_enc, is64)
            cs_lp = _read_cs_value(r, cs_enc, is64)
            action = r.uleb128()
            lsda.call_sites.append(
                CallSite(
                    start=function_start + cs_start,
                    length=cs_len,
                    landing_pad=(lp_start + cs_lp) if cs_lp else 0,
                    action=action,
                )
            )
        return lsda
    except ReaderError as exc:
        raise LsdaError(f"truncated LSDA at {lsda_addr:#x}: {exc}") from exc


def _read_cs_value(r: ByteReader, encoding: int, is64: bool) -> int:
    """Read one call-site table field.

    Call-site fields are offsets, so only the value format of the
    encoding applies — never the application modifier.
    """
    value = r.eh_pointer(encoding & 0x0F, pc=0, is64=is64)
    if value is None:
        raise LsdaError("omitted call-site field")
    return value


def landing_pads_from_exception_info(
    eh_frame,
    except_table_data: bytes,
    except_table_addr: int,
    is64: bool,
    *,
    diagnostics: Diagnostics | None = None,
) -> set[int]:
    """Collect every landing-pad address in a binary.

    Walks all FDEs carrying an LSDA pointer and parses the referenced
    LSDAs. Malformed individual LSDAs are skipped rather than aborting
    the whole scan, matching how a robust tool must behave on real-world
    binaries; when ``diagnostics`` is given, each skip is recorded there
    (source ``"lsda"``) so degraded parses stay observable.
    """
    pads: set[int] = set()
    for fde in eh_frame.fdes:
        if fde.lsda_address is None:
            continue
        try:
            lsda = parse_lsda(
                except_table_data,
                except_table_addr,
                fde.lsda_address,
                fde.pc_begin,
                is64,
            )
        except LsdaError as exc:
            if diagnostics is not None:
                diagnostics.record(
                    "lsda",
                    f"skipped LSDA of FDE at {fde.pc_begin:#x}: {exc}",
                    address=fde.lsda_address,
                    error=exc,
                )
            continue
        pads.update(lsda.landing_pads)
    return pads
