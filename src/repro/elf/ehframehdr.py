"""The ``.eh_frame_hdr`` section: the unwinder's binary-search index.

Real executables carry a ``PT_GNU_EH_FRAME`` segment pointing at this
header so the runtime can find the FDE covering a faulting PC in
O(log n). Tools like Ghidra read it as a fast, pre-sorted index of
function addresses — one more reason their recall follows the FDE
coverage (§V-C).

Both the parser and the writer use GCC's standard encodings: an
``sdata4 | pcrel`` pointer to ``.eh_frame`` and a ``sdata4 | datarel``
search table.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.elf.reader import ByteReader, ReaderError
from repro.errors import Diagnostics, ReproError

_VERSION = 1
_ENC_PCREL_SDATA4 = C.DW_EH_PE_pcrel | C.DW_EH_PE_sdata4       # 0x1b
_ENC_DATAREL_SDATA4 = C.DW_EH_PE_datarel | C.DW_EH_PE_sdata4   # 0x3b
_ENC_UDATA4 = C.DW_EH_PE_udata4                                # 0x03


class EhFrameHdrError(ReproError):
    """Raised on malformed ``.eh_frame_hdr`` contents."""


@dataclass
class EhFrameHdr:
    """Parsed search-table header."""

    eh_frame_addr: int
    #: Sorted (initial_location, fde_address) pairs.
    table: list[tuple[int, int]] = field(default_factory=list)

    @property
    def fde_count(self) -> int:
        return len(self.table)

    def function_starts(self) -> set[int]:
        return {loc for loc, _fde in self.table}

    def lookup(self, pc: int) -> int | None:
        """Address of the FDE covering ``pc`` per binary search (the
        runtime unwinder's algorithm). Returns ``None`` below the first
        entry."""
        lo, hi = 0, len(self.table)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.table[mid][0] <= pc:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return None
        return self.table[lo - 1][1]


def build_eh_frame_hdr(
    hdr_addr: int,
    eh_frame_addr: int,
    entries: list[tuple[int, int]],
) -> bytes:
    """Serialize a header.

    ``entries`` holds ``(function_start, fde_address)`` pairs; they are
    sorted as the format requires.
    """
    out = bytearray()
    out.append(_VERSION)
    out.append(_ENC_PCREL_SDATA4)     # eh_frame_ptr encoding
    out.append(_ENC_UDATA4)           # fde_count encoding
    out.append(_ENC_DATAREL_SDATA4)   # table encoding
    # eh_frame_ptr: relative to its own field address (hdr + 4).
    out += struct.pack("<i", eh_frame_addr - (hdr_addr + 4))
    out += struct.pack("<I", len(entries))
    for start, fde_addr in sorted(entries):
        out += struct.pack("<i", start - hdr_addr)
        out += struct.pack("<i", fde_addr - hdr_addr)
    return bytes(out)


def parse_eh_frame_hdr(
    data: bytes,
    hdr_addr: int,
    *,
    diagnostics: Diagnostics | None = None,
) -> EhFrameHdr:
    """Parse a header produced by GNU ld (or this module).

    With ``diagnostics`` given, a truncated search table yields the
    entries read so far plus a recorded diagnostic instead of raising;
    corruption before the table still returns an empty header.
    """
    r = ByteReader(data)
    hdr: EhFrameHdr | None = None
    try:
        version = r.u8()
        if version != _VERSION:
            raise EhFrameHdrError(f"unsupported version {version}")
        ptr_enc = r.u8()
        count_enc = r.u8()
        table_enc = r.u8()
        eh_frame_addr = r.eh_pointer(
            ptr_enc, pc=hdr_addr + r.pos, data_base=hdr_addr, is64=True)
        if eh_frame_addr is None:
            raise EhFrameHdrError("eh_frame pointer omitted")
        count = r.eh_pointer(
            count_enc, pc=hdr_addr + r.pos, data_base=hdr_addr, is64=True)
        hdr = EhFrameHdr(eh_frame_addr=eh_frame_addr)
        if count is None:
            return hdr
        for _ in range(count):
            before = r.pos
            loc = r.eh_pointer(table_enc, pc=hdr_addr + r.pos,
                               data_base=hdr_addr, is64=True)
            fde = r.eh_pointer(table_enc, pc=hdr_addr + r.pos,
                               data_base=hdr_addr, is64=True)
            if r.pos == before:
                # DW_EH_PE_omit consumes nothing; a corrupt count would
                # otherwise spin here for billions of no-op iterations.
                raise EhFrameHdrError(
                    f"non-advancing table encoding {table_enc:#x}")
            hdr.table.append((loc, fde))
        return hdr
    except (ReaderError, EhFrameHdrError) as exc:
        if diagnostics is None:
            if isinstance(exc, EhFrameHdrError):
                raise
            raise EhFrameHdrError(
                f"truncated .eh_frame_hdr: {exc}") from exc
        diagnostics.record(
            "eh_frame_hdr",
            f"malformed .eh_frame_hdr: {exc}",
            address=hdr_addr,
            error=exc,
        )
        return hdr if hdr is not None else EhFrameHdr(eh_frame_addr=0)
