"""Parser for the ``.eh_frame`` call-frame-information section.

Only the record framing is interpreted — CIE augmentation strings, FDE
``PC begin`` / ``PC range`` pointers and LSDA pointers. The CFI opcode
stream itself (advance-loc / def-cfa / ...) is irrelevant to function
identification and is skipped.

This is the metadata FETCH-style detectors rely on, and the channel
through which FunSeeker locates LSDAs (every function that owns an LSDA
necessarily has an FDE).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.elf.reader import ByteReader, ReaderError
from repro.errors import Diagnostics, ReproError


class EhFrameError(ReproError):
    """Raised on malformed ``.eh_frame`` contents."""


@dataclass
class CIE:
    """A Common Information Entry."""

    offset: int
    version: int
    augmentation: str
    code_alignment: int
    data_alignment: int
    return_register: int
    fde_encoding: int = C.DW_EH_PE_absptr
    lsda_encoding: int = C.DW_EH_PE_omit
    personality: int | None = None
    is_signal_frame: bool = False


@dataclass
class FDE:
    """A Frame Description Entry resolved against its CIE."""

    offset: int
    cie: CIE
    pc_begin: int
    pc_range: int
    lsda_address: int | None = None

    @property
    def pc_end(self) -> int:
        return self.pc_begin + self.pc_range


@dataclass
class EhFrame:
    """All CIEs and FDEs parsed from one ``.eh_frame`` section."""

    cies: dict[int, CIE] = field(default_factory=dict)
    fdes: list[FDE] = field(default_factory=list)

    def fde_covering(self, addr: int) -> FDE | None:
        """Return the FDE whose PC range covers ``addr``, if any."""
        for fde in self.fdes:
            if fde.pc_begin <= addr < fde.pc_end:
                return fde
        return None


def parse_eh_frame(
    data: bytes,
    section_addr: int,
    is64: bool,
    *,
    diagnostics: Diagnostics | None = None,
) -> EhFrame:
    """Parse an ``.eh_frame`` section.

    Parameters
    ----------
    data:
        Raw section contents.
    section_addr:
        Virtual address of the section (needed for ``DW_EH_PE_pcrel``).
    is64:
        Whether the binary is 64-bit (affects ``DW_EH_PE_absptr`` width).
    diagnostics:
        When given, malformed entries are recorded there and parsing
        resynchronizes on the next record (the length field frames each
        entry independently), returning a partial :class:`EhFrame`
        instead of raising :class:`EhFrameError`.
    """
    result = EhFrame()
    r = ByteReader(data)
    while r.remaining() >= 4:
        entry_offset = r.pos
        body_start: int | None = None
        length = 0
        try:
            length = r.u32()
            if length == 0:
                break  # terminator
            if length == 0xFFFFFFFF:
                length = r.u64()
            body_start = r.pos
            cie_id_pos = r.pos
            cie_id = r.u32()
            if cie_id == 0:
                cie = _parse_cie(r, entry_offset, is64)
                result.cies[entry_offset] = cie
            else:
                cie_offset = cie_id_pos - cie_id
                cie = result.cies.get(cie_offset)
                if cie is None:
                    raise EhFrameError(
                        f"FDE at {entry_offset:#x} references unknown CIE "
                        f"at {cie_offset:#x}"
                    )
                fde = _parse_fde(r, entry_offset, cie, section_addr, is64)
                result.fdes.append(fde)
            r.seek(body_start + length)
        except (ReaderError, EhFrameError) as exc:
            if diagnostics is None:
                if isinstance(exc, EhFrameError):
                    raise
                raise EhFrameError(
                    f"truncated .eh_frame entry at {entry_offset:#x}: {exc}"
                ) from exc
            diagnostics.record(
                "eh_frame",
                f"malformed entry at offset {entry_offset:#x}: {exc}",
                address=section_addr + entry_offset,
                error=exc,
            )
            # The length field frames each record, so a bad entry body
            # does not poison its successors: skip to the next record
            # when the frame is intact, otherwise stop with what we have.
            if body_start is None:
                break
            try:
                r.seek(body_start + length)
            except ReaderError:
                break
    return result


def _parse_cie(r: ByteReader, offset: int, is64: bool) -> CIE:
    version = r.u8()
    if version not in (1, 3, 4):
        raise EhFrameError(f"unsupported CIE version {version}")
    augmentation = r.cstring().decode("ascii", errors="replace")
    if version == 4:
        r.u8()  # address size
        r.u8()  # segment selector size
    code_alignment = r.uleb128()
    data_alignment = r.sleb128()
    # Version 1 stores the return-address register as a single byte;
    # later versions use ULEB128. Register numbers on x86/x86-64/AArch64
    # are < 128, so ULEB128 decoding is byte-compatible for version 1 too.
    return_register = r.uleb128()

    cie = CIE(
        offset=offset,
        version=version,
        augmentation=augmentation,
        code_alignment=code_alignment,
        data_alignment=data_alignment,
        return_register=return_register,
    )
    if augmentation.startswith("z"):
        aug_len = r.uleb128()
        aug_end = r.pos + aug_len
        for ch in augmentation[1:]:
            if ch == "R":
                cie.fde_encoding = r.u8()
            elif ch == "L":
                cie.lsda_encoding = r.u8()
            elif ch == "P":
                enc = r.u8()
                cie.personality = r.eh_pointer(enc, pc=0, is64=is64)
            elif ch == "S":
                cie.is_signal_frame = True
            elif ch in ("B", "G"):
                pass  # AArch64 PAC / MTE markers carry no data
            else:
                # Unknown augmentation character: remaining data cannot be
                # interpreted; skip to the recorded end.
                break
        r.seek(aug_end)
    return cie


def _parse_fde(
    r: ByteReader, offset: int, cie: CIE, section_addr: int, is64: bool
) -> FDE:
    pc_field_addr = section_addr + r.pos
    pc_begin = r.eh_pointer(cie.fde_encoding, pc=pc_field_addr, is64=is64)
    if pc_begin is None:
        raise EhFrameError(f"FDE at {offset:#x} has omitted pc_begin")
    # PC range uses the value format of the CIE encoding with no
    # application modifier.
    pc_range = r.eh_pointer(cie.fde_encoding & 0x0F, pc=0, is64=is64)
    lsda_address: int | None = None
    if cie.augmentation.startswith("z"):
        aug_len = r.uleb128()
        aug_end = r.pos + aug_len
        if cie.lsda_encoding != C.DW_EH_PE_omit and aug_len > 0:
            lsda_field_addr = section_addr + r.pos
            # A raw value of zero means "no LSDA" irrespective of the
            # application modifier, so decode the value format first.
            raw = r.eh_pointer(
                cie.lsda_encoding & 0x0F, pc=0, is64=is64
            )
            if raw:
                app = cie.lsda_encoding & 0x70
                if app == C.DW_EH_PE_pcrel:
                    raw += lsda_field_addr
                mask = (1 << 64) - 1 if is64 else (1 << 32) - 1
                lsda_address = raw & mask
        r.seek(aug_end)
    return FDE(
        offset=offset,
        cie=cie,
        pc_begin=pc_begin,
        pc_range=pc_range or 0,
        lsda_address=lsda_address,
    )
