"""Resolution of PLT stub addresses to imported function names.

``FILTERENDBR`` must recognize a ``call`` whose target is the PLT stub of
an indirect-return function (``setjmp`` and friends). This module builds
the map from stub virtual addresses to the dynamic-symbol names they
dispatch to, by combining:

1. ``.rela.plt`` / ``.rel.plt`` relocations, which associate each GOT
   slot with a symbol name, and
2. the ``jmp *slot`` instruction inside each PLT stub, which associates
   each stub with a GOT slot.

Both the classic ``.plt`` layout and the CET ``-z ibtplt`` split layout
(``.plt`` + ``.plt.sec``) are handled, for x86 and x86-64.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import constants as C
from repro.elf.parser import ELFFile
from repro.elf.types import Section
from repro.errors import Diagnostics, ReproError

_PLT_SECTIONS = (C.SECTION_PLT, C.SECTION_PLT_SEC, C.SECTION_PLT_GOT)
_PLT_ENTRY_SIZE = 16


@dataclass
class PLTMap:
    """Mapping from PLT stub start addresses to imported symbol names."""

    stub_to_name: dict[int, str] = field(default_factory=dict)
    plt_ranges: list[tuple[int, int]] = field(default_factory=list)

    def name_at(self, addr: int) -> str | None:
        """Name of the import dispatched by the stub starting at ``addr``."""
        return self.stub_to_name.get(addr)

    def in_plt(self, addr: int) -> bool:
        """Whether ``addr`` falls inside any PLT-like section."""
        return any(lo <= addr < hi for lo, hi in self.plt_ranges)


def build_plt_map(
    elf: ELFFile, *, diagnostics: Diagnostics | None = None
) -> PLTMap:
    """Construct the PLT map for a parsed ELF file.

    With ``diagnostics`` given, a malformed relocation or dynamic-symbol
    table degrades to an empty (or partial) import map with a recorded
    diagnostic — indirect-return filtering then simply has fewer names
    to work with — instead of aborting the analysis.
    """
    try:
        got_to_name = _got_slot_names(elf)
    except ReproError as exc:
        if diagnostics is None:
            raise
        diagnostics.record(
            "plt",
            f"unusable PLT relocations, import names dropped: {exc}",
            error=exc,
        )
        got_to_name = {}
    result = PLTMap()
    for name in _PLT_SECTIONS:
        sec = elf.section(name)
        if sec is None or sec.sh_size == 0:
            continue
        result.plt_ranges.append((sec.sh_addr, sec.end_addr))
        _scan_plt_section(elf, sec, got_to_name, result.stub_to_name)
    return result


def _got_slot_names(elf: ELFFile) -> dict[int, str]:
    """Map GOT slot virtual addresses to symbol names via PLT relocations."""
    out: dict[int, str] = {}
    for sec_name in (".rela.plt", ".rel.plt"):
        for rel in elf.relocations(sec_name):
            if rel.symbol_name:
                out[rel.offset] = rel.symbol_name
    # GLOB_DAT relocations feed .plt.got stubs.
    for sec_name in (".rela.dyn", ".rel.dyn"):
        for rel in elf.relocations(sec_name):
            if rel.symbol_name and rel.type in (
                C.R_X86_64_GLOB_DAT, C.R_386_GLOB_DAT
            ):
                out.setdefault(rel.offset, rel.symbol_name)
    return out


def _scan_plt_section(
    elf: ELFFile,
    sec: Section,
    got_to_name: dict[int, str],
    stub_to_name: dict[int, str],
) -> None:
    """Scan the 16-byte stubs of one PLT section for GOT dispatch jumps."""
    got_plt = elf.section(".got.plt") or elf.section(".got")
    got_base = got_plt.sh_addr if got_plt else 0
    data = sec.data
    for entry_off in range(0, len(data) - 5, _PLT_ENTRY_SIZE):
        entry_addr = sec.sh_addr + entry_off
        slot = _find_got_dispatch(
            data, entry_off, entry_addr, elf.is64, got_base
        )
        if slot is None:
            continue
        name = got_to_name.get(slot)
        if name:
            stub_to_name[entry_addr] = name


def _find_got_dispatch(
    data: bytes, entry_off: int, entry_addr: int, is64: bool, got_base: int
) -> int | None:
    """Locate the ``jmp *slot`` inside one PLT stub and return the slot.

    Scans the 16 bytes of the stub for the first indirect-jump pattern so
    that leading ``endbr`` / ``bnd`` prefixes or ``push`` instructions do
    not matter.
    """
    end = min(entry_off + _PLT_ENTRY_SIZE, len(data) - 5)
    i = entry_off
    while i < end:
        b0, b1 = data[i], data[i + 1]
        if b0 == 0xFF and b1 == 0x25:
            disp = int.from_bytes(data[i + 2 : i + 6], "little")
            if is64:
                # jmp *disp32(%rip): slot = next-insn address + disp
                next_addr = entry_addr + (i - entry_off) + 6
                return (next_addr + _sign32(disp)) & ((1 << 64) - 1)
            # 32-bit non-PIC: jmp *abs32
            return disp
        if not is64 and b0 == 0xFF and b1 == 0xA3:
            # 32-bit PIC: jmp *disp32(%ebx); ebx holds the GOT base.
            disp = int.from_bytes(data[i + 2 : i + 6], "little")
            return (got_base + _sign32(disp)) & 0xFFFFFFFF
        i += 1
    return None


def _sign32(value: int) -> int:
    """Interpret a 32-bit value as signed."""
    return value - (1 << 32) if value & (1 << 31) else value
