"""Little-endian byte-stream reader used by the ELF and DWARF parsers.

The reader keeps an explicit cursor so that variable-length records
(ULEB128/SLEB128, DW_EH_PE-encoded pointers) can be parsed sequentially
without slicing the underlying buffer repeatedly.
"""

from __future__ import annotations

import struct

from repro.elf import constants as C
from repro.errors import ReproError


class ReaderError(ReproError):
    """Raised when a read would run past the end of the buffer."""


class ByteReader:
    """Sequential little-endian reader over a ``bytes`` buffer.

    Parameters
    ----------
    data:
        The buffer to read from.
    offset:
        Initial cursor position.
    """

    def __init__(self, data: bytes, offset: int = 0) -> None:
        self._data = data
        self._pos = offset

    # -- cursor management -------------------------------------------------

    @property
    def pos(self) -> int:
        """Current cursor offset into the buffer."""
        return self._pos

    def seek(self, offset: int) -> None:
        """Move the cursor to an absolute offset."""
        if offset < 0 or offset > len(self._data):
            raise ReaderError(f"seek out of range: {offset}")
        self._pos = offset

    def skip(self, count: int) -> None:
        """Advance the cursor by ``count`` bytes."""
        self.seek(self._pos + count)

    def remaining(self) -> int:
        """Number of bytes left after the cursor."""
        return len(self._data) - self._pos

    def eof(self) -> bool:
        """Whether the cursor has reached the end of the buffer."""
        return self._pos >= len(self._data)

    # -- fixed-width reads --------------------------------------------------

    def bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes."""
        if self._pos + count > len(self._data):
            raise ReaderError(
                f"read of {count} bytes at {self._pos} exceeds buffer of "
                f"{len(self._data)}"
            )
        out = self._data[self._pos : self._pos + count]
        self._pos += count
        return out

    def u8(self) -> int:
        return self.bytes(1)[0]

    def u16(self) -> int:
        return struct.unpack("<H", self.bytes(2))[0]

    def u32(self) -> int:
        return struct.unpack("<I", self.bytes(4))[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.bytes(8))[0]

    def s8(self) -> int:
        return struct.unpack("<b", self.bytes(1))[0]

    def s16(self) -> int:
        return struct.unpack("<h", self.bytes(2))[0]

    def s32(self) -> int:
        return struct.unpack("<i", self.bytes(4))[0]

    def s64(self) -> int:
        return struct.unpack("<q", self.bytes(8))[0]

    def uword(self, is64: bool) -> int:
        """Read a natural-width unsigned word (4 or 8 bytes)."""
        return self.u64() if is64 else self.u32()

    # -- variable-width reads -----------------------------------------------

    def uleb128(self) -> int:
        """Read an unsigned LEB128 value."""
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 63:
                raise ReaderError("ULEB128 too long")

    def sleb128(self) -> int:
        """Read a signed LEB128 value."""
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                if shift < 64 and byte & 0x40:
                    result -= 1 << shift
                return result
            if shift > 63:
                raise ReaderError("SLEB128 too long")

    def cstring(self) -> bytes:
        """Read a NUL-terminated byte string (terminator consumed)."""
        end = self._data.find(b"\x00", self._pos)
        if end < 0:
            raise ReaderError("unterminated C string")
        out = self._data[self._pos : end]
        self._pos = end + 1
        return out

    # -- DWARF exception-handling pointer encodings ---------------------------

    def eh_pointer(
        self,
        encoding: int,
        *,
        pc: int = 0,
        data_base: int = 0,
        func_base: int = 0,
        is64: bool = True,
    ) -> int | None:
        """Read a pointer with a ``DW_EH_PE_*`` encoding.

        Parameters
        ----------
        encoding:
            The full encoding byte (value format | application modifier).
        pc:
            Virtual address of the pointer's own location; used by
            ``DW_EH_PE_pcrel``.
        data_base:
            Base for ``DW_EH_PE_datarel`` (typically ``.eh_frame_hdr`` or
            the GOT).
        func_base:
            Base for ``DW_EH_PE_funcrel``.
        is64:
            Width used by ``DW_EH_PE_absptr``.

        Returns ``None`` for ``DW_EH_PE_omit``.
        """
        if encoding == C.DW_EH_PE_omit:
            return None

        fmt = encoding & 0x0F
        if fmt == C.DW_EH_PE_absptr:
            value = self.uword(is64)
        elif fmt == C.DW_EH_PE_uleb128:
            value = self.uleb128()
        elif fmt == C.DW_EH_PE_udata2:
            value = self.u16()
        elif fmt == C.DW_EH_PE_udata4:
            value = self.u32()
        elif fmt == C.DW_EH_PE_udata8:
            value = self.u64()
        elif fmt == C.DW_EH_PE_sleb128:
            value = self.sleb128()
        elif fmt == C.DW_EH_PE_sdata2:
            value = self.s16()
        elif fmt == C.DW_EH_PE_sdata4:
            value = self.s32()
        elif fmt == C.DW_EH_PE_sdata8:
            value = self.s64()
        else:
            raise ReaderError(f"unsupported DW_EH_PE value format {fmt:#x}")

        app = encoding & 0x70
        if app == C.DW_EH_PE_pcrel:
            value += pc
        elif app == C.DW_EH_PE_datarel:
            value += data_base
        elif app == C.DW_EH_PE_funcrel:
            value += func_base
        elif app not in (0, C.DW_EH_PE_textrel, C.DW_EH_PE_aligned):
            raise ReaderError(f"unsupported DW_EH_PE application {app:#x}")

        mask = (1 << 64) - 1 if is64 else (1 << 32) - 1
        return value & mask


def eh_pointer_size(encoding: int, is64: bool) -> int | None:
    """Return the encoded size of a fixed-width ``DW_EH_PE_*`` pointer.

    Returns ``None`` for variable-length (LEB128) encodings and 0 for
    ``DW_EH_PE_omit``.
    """
    if encoding == C.DW_EH_PE_omit:
        return 0
    fmt = encoding & 0x0F
    if fmt == C.DW_EH_PE_absptr:
        return 8 if is64 else 4
    if fmt in (C.DW_EH_PE_udata2, C.DW_EH_PE_sdata2):
        return 2
    if fmt in (C.DW_EH_PE_udata4, C.DW_EH_PE_sdata4):
        return 4
    if fmt in (C.DW_EH_PE_udata8, C.DW_EH_PE_sdata8):
        return 8
    return None
