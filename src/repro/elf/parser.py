"""ELF container parser.

``ELFFile`` reads the file header, section headers, program headers,
symbol tables, and relocation tables of a 32- or 64-bit little-endian
ELF file. It is deliberately strict about the structures this project
relies on and permissive about everything else.

Two parse modes exist:

- **strict** (the default): structure-level corruption raises
  :class:`ElfParseError`. This is what unit tests and the synthetic
  toolchain want — corruption there is a bug.
- **degraded** (``strict=False``): corruption is recorded as a
  :class:`~repro.errors.Diagnostic` on ``self.diagnostics`` and parsing
  continues with partial results (missing sections, empty names, a
  truncated symbol list). No input, however mangled, raises. This is
  what corpus sweeps over untrusted binaries want.
"""

from __future__ import annotations

import os
import struct

from repro import obs
from repro.elf import constants as C
from repro.elf.reader import ByteReader, ReaderError
from repro.elf.types import ElfHeader, Relocation, Section, Segment, Symbol
from repro.errors import Diagnostics, MalformedELFError, Severity

_EMPTY_HEADER = ElfHeader(
    ei_class=C.ELFCLASS64, ei_data=C.ELFDATA2LSB, e_type=C.ET_NONE,
    e_machine=0, e_entry=0, e_phoff=0, e_shoff=0, e_flags=0, e_ehsize=0,
    e_phentsize=0, e_phnum=0, e_shentsize=0, e_shnum=0, e_shstrndx=0,
)


class ElfParseError(MalformedELFError):
    """Raised when a file is not a parseable ELF object.

    Derives from :class:`~repro.errors.MalformedELFError`, the
    *permanent* branch of the taxonomy: the evaluation harness fails
    fast instead of retrying a deterministically corrupt input.
    """


class ELFFile:
    """A parsed ELF file.

    Parameters
    ----------
    data:
        Raw file contents.
    strict:
        When ``True`` (default), malformed structures raise
        :class:`ElfParseError`. When ``False``, they are recorded on
        :attr:`diagnostics` and parsing continues with partial results;
        the constructor never raises.
    diagnostics:
        Optional shared collector. A fresh one is created when omitted,
        so ``elf.diagnostics`` is always usable.

    Use :meth:`from_path` to load from disk.
    """

    def __init__(
        self,
        data: bytes,
        *,
        strict: bool = True,
        diagnostics: Diagnostics | None = None,
    ) -> None:
        self.data = data
        self.strict = strict
        self.diagnostics = diagnostics if diagnostics is not None \
            else Diagnostics()
        self.header = _EMPTY_HEADER
        self.sections: list[Section] = []
        self.segments: list[Segment] = []
        self._sections_by_name: dict[str, Section] = {}

        with obs.span("parse", bytes=len(data)):
            if len(data) < C.EI_NIDENT or data[:4] != C.ELFMAG:
                self._fail("not an ELF file (bad magic)")
                return
            if not self._parse_header_checked():
                return
            self.sections = self._parse_sections()
            self.segments = self._parse_segments()
            for sec in self.sections:
                # Keep the first occurrence; duplicate names are rare
                # and the first (e.g. the sole .text) is the one
                # analyses want.
                self._sections_by_name.setdefault(sec.name, sec)
            obs.add("parse.files", 1)
            obs.add("parse.sections", len(self.sections))
            obs.add("parse.segments", len(self.segments))

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_path(
        cls, path: str | os.PathLike, *, strict: bool = True
    ) -> "ELFFile":
        from repro import faults

        with open(path, "rb") as f:
            data = f.read()
        if faults.hit(faults.SITE_ELF_READ) == faults.KIND_TRUNCATE:
            data = data[: len(data) // 2]
        return cls(data, strict=strict)

    @classmethod
    def degraded(cls, data: bytes) -> "ELFFile":
        """Parse with degraded-mode semantics: never raises."""
        return cls(data, strict=False)

    # -- error handling -------------------------------------------------------

    def _fail(
        self,
        message: str,
        *,
        address: int | None = None,
        error: BaseException | None = None,
        severity: Severity = Severity.ERROR,
    ) -> None:
        """Raise in strict mode; record a diagnostic in degraded mode."""
        if self.strict:
            raise ElfParseError(message) from error
        self.diagnostics.record(
            "elf", message, severity=severity, address=address, error=error,
        )

    # -- header / tables ------------------------------------------------------

    @property
    def is64(self) -> bool:
        return self.header.is64

    @property
    def machine(self) -> int:
        return self.header.e_machine

    def _parse_header_checked(self) -> bool:
        """Parse the file header; return False when nothing past the
        identification bytes is trustworthy."""
        ident = self.data[: C.EI_NIDENT]
        ei_class = ident[C.EI_CLASS]
        ei_data = ident[C.EI_DATA]
        if ei_class not in (C.ELFCLASS32, C.ELFCLASS64):
            self._fail(f"bad EI_CLASS {ei_class}")
            return False
        if ei_data != C.ELFDATA2LSB:
            self._fail("only little-endian ELF is supported")
            return False
        r = ByteReader(self.data, C.EI_NIDENT)
        try:
            e_type = r.u16()
            e_machine = r.u16()
            r.u32()  # e_version
            if ei_class == C.ELFCLASS64:
                e_entry = r.u64()
                e_phoff = r.u64()
                e_shoff = r.u64()
            else:
                e_entry = r.u32()
                e_phoff = r.u32()
                e_shoff = r.u32()
            e_flags = r.u32()
            e_ehsize = r.u16()
            e_phentsize = r.u16()
            e_phnum = r.u16()
            e_shentsize = r.u16()
            e_shnum = r.u16()
            e_shstrndx = r.u16()
        except ReaderError as exc:
            self._fail(f"truncated ELF header: {exc}", error=exc)
            # Keep the identification bytes so is64 reflects EI_CLASS
            # even when the rest of the header is missing.
            self.header = ElfHeader(
                ei_class=ei_class, ei_data=ei_data, e_type=C.ET_NONE,
                e_machine=0, e_entry=0, e_phoff=0, e_shoff=0, e_flags=0,
                e_ehsize=0, e_phentsize=0, e_phnum=0, e_shentsize=0,
                e_shnum=0, e_shstrndx=0,
            )
            return False
        self.header = ElfHeader(
            ei_class=ei_class,
            ei_data=ei_data,
            e_type=e_type,
            e_machine=e_machine,
            e_entry=e_entry,
            e_phoff=e_phoff,
            e_shoff=e_shoff,
            e_flags=e_flags,
            e_ehsize=e_ehsize,
            e_phentsize=e_phentsize,
            e_phnum=e_phnum,
            e_shentsize=e_shentsize,
            e_shnum=e_shnum,
            e_shstrndx=e_shstrndx,
        )
        return True

    def _parse_sections(self) -> list[Section]:
        hdr = self.header
        if hdr.e_shoff == 0 or hdr.e_shnum == 0:
            return []
        shentsize = hdr.e_shentsize
        min_entsize = 64 if hdr.is64 else 40
        if shentsize < min_entsize:
            self._fail(
                f"e_shentsize {shentsize} below structure size "
                f"{min_entsize}",
                address=hdr.e_shoff,
            )
            if self.strict:  # unreachable; keeps intent explicit
                return []
            shentsize = min_entsize
        raw: list[tuple[int, ...]] = []
        for i in range(hdr.e_shnum):
            off = hdr.e_shoff + i * shentsize
            r = ByteReader(self.data, off) if off <= len(self.data) \
                else ByteReader(b"")
            try:
                if hdr.is64:
                    fields = struct.unpack("<IIQQQQIIQQ", r.bytes(64))
                else:
                    fields = struct.unpack("<IIIIIIIIII", r.bytes(40))
            except ReaderError as exc:
                self._fail(f"truncated section header {i}", address=off,
                           error=exc)
                break  # degraded: keep the headers parsed so far
            raw.append(fields)

        # Resolve names through the section-header string table. An
        # out-of-range e_shstrndx is corruption: strict mode rejects the
        # file, degraded mode leaves every section unnamed.
        shstr = b""
        if hdr.e_shstrndx == C.SHN_UNDEF:
            pass  # legitimately nameless (e.g. a minimal loader image)
        elif hdr.e_shstrndx < len(raw):
            f = raw[hdr.e_shstrndx]
            str_off, str_size = f[4], f[5]
            if str_off > len(self.data):
                self._fail(
                    f"section-name string table offset {str_off:#x} "
                    f"outside file",
                    address=str_off, severity=Severity.WARNING,
                )
            shstr = self.data[str_off : str_off + str_size]
        else:
            self._fail(
                f"e_shstrndx {hdr.e_shstrndx} out of range "
                f"(only {len(raw)} section headers)",
                severity=Severity.WARNING,
            )

        sections: list[Section] = []
        for i, f in enumerate(raw):
            (name_off, sh_type, sh_flags, sh_addr, sh_offset, sh_size,
             sh_link, sh_info, sh_addralign, sh_entsize) = f
            name = _str_at(shstr, name_off)
            if sh_type in (C.SHT_NOBITS, C.SHT_NULL):
                data = b""
            else:
                # Real /usr/bin triage surfaces headers whose sh_offset
                # or sh_size (u64 fields an attacker fully controls)
                # run past the file. Bounds-check *before* slicing:
                # strict mode rejects the file with a diagnostic
                # MalformedELFError; degraded mode records the
                # truncation and keeps the in-file prefix. Either way
                # the claimed size never drives an allocation.
                if sh_size and sh_offset + sh_size > len(self.data):
                    self._fail(
                        f"section {i} ({name or '?'}) data overflows "
                        f"the file: sh_offset={sh_offset:#x} + "
                        f"sh_size={sh_size:#x} > {len(self.data)} "
                        f"bytes in file",
                        address=sh_offset,
                    )
                data = self.data[sh_offset : sh_offset + sh_size]
            sections.append(
                Section(
                    index=i,
                    name=name,
                    sh_type=sh_type,
                    sh_flags=sh_flags,
                    sh_addr=sh_addr,
                    sh_offset=sh_offset,
                    sh_size=sh_size,
                    sh_link=sh_link,
                    sh_info=sh_info,
                    sh_addralign=sh_addralign,
                    sh_entsize=sh_entsize,
                    data=data,
                )
            )
        return sections

    def _parse_segments(self) -> list[Segment]:
        hdr = self.header
        if hdr.e_phoff == 0 or hdr.e_phnum == 0:
            return []
        segments: list[Segment] = []
        for i in range(hdr.e_phnum):
            off = hdr.e_phoff + i * hdr.e_phentsize
            r = ByteReader(self.data, off) if off <= len(self.data) \
                else ByteReader(b"")
            try:
                if hdr.is64:
                    p_type = r.u32()
                    p_flags = r.u32()
                    p_offset = r.u64()
                    p_vaddr = r.u64()
                    p_paddr = r.u64()
                    p_filesz = r.u64()
                    p_memsz = r.u64()
                    p_align = r.u64()
                else:
                    p_type = r.u32()
                    p_offset = r.u32()
                    p_vaddr = r.u32()
                    p_paddr = r.u32()
                    p_filesz = r.u32()
                    p_memsz = r.u32()
                    p_flags = r.u32()
                    p_align = r.u32()
            except ReaderError as exc:
                self._fail(f"truncated program header {i}", address=off,
                           error=exc)
                break
            segments.append(
                Segment(p_type, p_flags, p_offset, p_vaddr, p_paddr,
                        p_filesz, p_memsz, p_align)
            )
        return segments

    # -- lookups ---------------------------------------------------------------

    def section(self, name: str) -> Section | None:
        """Return the first section with the given name, or ``None``."""
        return self._sections_by_name.get(name)

    def section_at_addr(self, addr: int) -> Section | None:
        """Return the allocated section covering a virtual address."""
        for sec in self.sections:
            if sec.is_alloc and sec.sh_size and sec.contains_addr(addr):
                return sec
        return None

    def exec_sections(self) -> list[Section]:
        """All executable, allocated sections in address order."""
        out = [s for s in self.sections
               if s.is_alloc and s.is_exec and s.sh_size > 0]
        return sorted(out, key=lambda s: s.sh_addr)

    def read_at_addr(self, addr: int, size: int) -> bytes | None:
        """Read ``size`` bytes of file-backed memory at a virtual address."""
        sec = self.section_at_addr(addr)
        if sec is None or sec.sh_type == C.SHT_NOBITS:
            return None
        start = addr - sec.sh_addr
        if start + size > len(sec.data):
            return None
        return sec.data[start : start + size]

    # -- symbols ----------------------------------------------------------------

    def _symbols_from(self, sec: Section) -> list[Symbol]:
        strtab = b""
        if 0 <= sec.sh_link < len(self.sections):
            strtab = self.sections[sec.sh_link].data
        entsize = sec.sh_entsize or (24 if self.is64 else 16)
        min_entsize = 24 if self.is64 else 16
        if entsize < min_entsize:
            self._fail(
                f"symbol table {sec.name!r} sh_entsize {entsize} below "
                f"structure size {min_entsize}",
            )
            if self.strict:  # unreachable; keeps intent explicit
                return []
            entsize = min_entsize
        out: list[Symbol] = []
        count = len(sec.data) // entsize if entsize else 0
        r = ByteReader(sec.data)
        for i in range(count):
            r.seek(i * entsize)
            try:
                if self.is64:
                    name_off = r.u32()
                    info = r.u8()
                    other = r.u8()
                    shndx = r.u16()
                    value = r.u64()
                    size = r.u64()
                else:
                    name_off = r.u32()
                    value = r.u32()
                    size = r.u32()
                    info = r.u8()
                    other = r.u8()
                    shndx = r.u16()
            except ReaderError as exc:
                self._fail(
                    f"truncated symbol {i} in {sec.name!r}",
                    address=sec.sh_offset + i * entsize, error=exc,
                )
                break
            out.append(
                Symbol(
                    name=_str_at(strtab, name_off),
                    value=value,
                    size=size,
                    info=info,
                    other=other,
                    shndx=shndx,
                )
            )
        return out

    def symbols(self) -> list[Symbol]:
        """Symbols from ``.symtab`` (empty for stripped binaries)."""
        sec = self.section(".symtab")
        if sec is None or sec.sh_type != C.SHT_SYMTAB:
            return []
        return self._symbols_from(sec)

    def dynamic_symbols(self) -> list[Symbol]:
        """Symbols from ``.dynsym``."""
        sec = self.section(".dynsym")
        if sec is None or sec.sh_type != C.SHT_DYNSYM:
            return []
        return self._symbols_from(sec)

    @property
    def is_stripped(self) -> bool:
        """Whether a usable static symbol table is absent."""
        sec = self.section(".symtab")
        return sec is None or sec.sh_type != C.SHT_SYMTAB

    # -- relocations -------------------------------------------------------------

    def relocations(self, section_name: str) -> list[Relocation]:
        """Parse a REL or RELA section, resolving symbol names via sh_link."""
        sec = self.section(section_name)
        if sec is None:
            return []
        syms: list[Symbol] = []
        if 0 <= sec.sh_link < len(self.sections):
            symsec = self.sections[sec.sh_link]
            if symsec.sh_type in (C.SHT_SYMTAB, C.SHT_DYNSYM):
                syms = self._symbols_from(symsec)
        is_rela = sec.sh_type == C.SHT_RELA
        is64 = self.is64
        if is64:
            entsize = 24 if is_rela else 16
        else:
            entsize = 12 if is_rela else 8
        out: list[Relocation] = []
        r = ByteReader(sec.data)
        for i in range(len(sec.data) // entsize):
            try:
                offset = r.uword(is64)
                info = r.uword(is64)
                addend = 0
                if is_rela:
                    addend = r.s64() if is64 else r.s32()
            except ReaderError as exc:
                self._fail(
                    f"truncated relocation {i} in {section_name!r}",
                    address=sec.sh_offset + i * entsize, error=exc,
                )
                break
            sym_idx = C.r_sym(info, is64)
            rtype = C.r_type(info, is64)
            name = syms[sym_idx].name if sym_idx < len(syms) else ""
            out.append(Relocation(offset, rtype, sym_idx, name, addend))
        return out


def _str_at(table: bytes, offset: int) -> str:
    """Extract a NUL-terminated string from a string table."""
    if offset >= len(table):
        return ""
    end = table.find(b"\x00", offset)
    if end < 0:
        end = len(table)
    return table[offset:end].decode("utf-8", errors="replace")


def strip_symbols(data: bytes) -> bytes:
    """Return a copy of an ELF image with symbols and debug info removed.

    Mirrors what ``strip`` does for the purposes of this project:
    function identification tools must see neither the static symbol
    table nor any DWARF sections. Rather than rewriting the whole file
    layout, the affected section headers are retyped to ``SHT_NULL`` so
    parsers treat them as absent.
    """
    elf = ELFFile(data)
    hdr = elf.header
    out = bytearray(data)
    for sec in elf.sections:
        strippable = (sec.name in (".symtab", ".strtab")
                      or sec.name.startswith(".debug_"))
        if not strippable:
            continue
        shoff = hdr.e_shoff + sec.index * hdr.e_shentsize
        # sh_type is the second 4-byte field in both Elf32/Elf64 layouts.
        struct.pack_into("<I", out, shoff + 4, C.SHT_NULL)
    return bytes(out)
