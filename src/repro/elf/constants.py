"""ELF file-format constants.

Only the subset of the ELF specification exercised by this project is
defined here: identification bytes, file/section/segment/symbol types,
relocation kinds for x86 / x86-64 / AArch64, and the DWARF exception
pointer encodings used by ``.eh_frame`` and ``.gcc_except_table``.

Values follow the System V ABI and the processor supplements.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# e_ident layout
# --------------------------------------------------------------------------

ELFMAG = b"\x7fELF"

EI_CLASS = 4
EI_DATA = 5
EI_VERSION = 6
EI_OSABI = 7
EI_ABIVERSION = 8
EI_NIDENT = 16

ELFCLASS32 = 1
ELFCLASS64 = 2

ELFDATA2LSB = 1
ELFDATA2MSB = 2

ELFOSABI_SYSV = 0
ELFOSABI_GNU = 3

EV_CURRENT = 1

# --------------------------------------------------------------------------
# e_type — object file types
# --------------------------------------------------------------------------

ET_NONE = 0
ET_REL = 1
ET_EXEC = 2
ET_DYN = 3
ET_CORE = 4

# --------------------------------------------------------------------------
# e_machine — architectures
# --------------------------------------------------------------------------

EM_386 = 3
EM_X86_64 = 62
EM_AARCH64 = 183

# --------------------------------------------------------------------------
# Section header types (sh_type)
# --------------------------------------------------------------------------

SHT_NULL = 0
SHT_PROGBITS = 1
SHT_SYMTAB = 2
SHT_STRTAB = 3
SHT_RELA = 4
SHT_HASH = 5
SHT_DYNAMIC = 6
SHT_NOTE = 7
SHT_NOBITS = 8
SHT_REL = 9
SHT_DYNSYM = 11
SHT_INIT_ARRAY = 14
SHT_FINI_ARRAY = 15
SHT_GNU_HASH = 0x6FFFFFF6
SHT_GNU_VERSYM = 0x6FFFFFFF
SHT_GNU_VERNEED = 0x6FFFFFFE

# Section header flags (sh_flags)

SHF_WRITE = 0x1
SHF_ALLOC = 0x2
SHF_EXECINSTR = 0x4
SHF_INFO_LINK = 0x40

# --------------------------------------------------------------------------
# Program header types (p_type) and flags (p_flags)
# --------------------------------------------------------------------------

PT_NULL = 0
PT_LOAD = 1
PT_DYNAMIC = 2
PT_INTERP = 3
PT_NOTE = 4
PT_PHDR = 6
PT_GNU_EH_FRAME = 0x6474E550
PT_GNU_STACK = 0x6474E551
PT_GNU_RELRO = 0x6474E552
PT_GNU_PROPERTY = 0x6474E553

PF_X = 0x1
PF_W = 0x2
PF_R = 0x4

# --------------------------------------------------------------------------
# Symbol table encodings
# --------------------------------------------------------------------------

STB_LOCAL = 0
STB_GLOBAL = 1
STB_WEAK = 2

STT_NOTYPE = 0
STT_OBJECT = 1
STT_FUNC = 2
STT_SECTION = 3
STT_FILE = 4
STT_GNU_IFUNC = 10

STV_DEFAULT = 0
STV_HIDDEN = 2

SHN_UNDEF = 0
SHN_ABS = 0xFFF1


def st_info(bind: int, typ: int) -> int:
    """Pack symbol binding and type into the ``st_info`` byte."""
    return (bind << 4) | (typ & 0xF)


def st_bind(info: int) -> int:
    """Extract the binding half of ``st_info``."""
    return info >> 4


def st_type(info: int) -> int:
    """Extract the type half of ``st_info``."""
    return info & 0xF


# --------------------------------------------------------------------------
# Dynamic section tags
# --------------------------------------------------------------------------

DT_NULL = 0
DT_NEEDED = 1
DT_PLTRELSZ = 2
DT_PLTGOT = 3
DT_STRTAB = 5
DT_SYMTAB = 6
DT_RELA = 7
DT_RELASZ = 8
DT_RELAENT = 9
DT_STRSZ = 10
DT_SYMENT = 11
DT_REL = 17
DT_RELSZ = 18
DT_RELENT = 19
DT_PLTREL = 20
DT_JMPREL = 23
DT_FLAGS = 30

# --------------------------------------------------------------------------
# Relocation types (subset)
# --------------------------------------------------------------------------

R_X86_64_NONE = 0
R_X86_64_64 = 1
R_X86_64_PC32 = 2
R_X86_64_GLOB_DAT = 6
R_X86_64_JUMP_SLOT = 7
R_X86_64_RELATIVE = 8
R_X86_64_PLT32 = 4

R_386_NONE = 0
R_386_32 = 1
R_386_PC32 = 2
R_386_GLOB_DAT = 6
R_386_JMP_SLOT = 7
R_386_RELATIVE = 8
R_386_PLT32 = 4

R_AARCH64_JUMP_SLOT = 1026


def r_info(sym: int, typ: int, is64: bool) -> int:
    """Pack an ``r_info`` field for a relocation entry."""
    if is64:
        return (sym << 32) | (typ & 0xFFFFFFFF)
    return (sym << 8) | (typ & 0xFF)


def r_sym(info: int, is64: bool) -> int:
    """Extract the symbol index from ``r_info``."""
    return info >> 32 if is64 else info >> 8


def r_type(info: int, is64: bool) -> int:
    """Extract the relocation type from ``r_info``."""
    return info & 0xFFFFFFFF if is64 else info & 0xFF


# --------------------------------------------------------------------------
# DWARF exception-handling pointer encodings (DW_EH_PE_*)
#
# Used both by .eh_frame (CIE augmentation, FDE pointers) and by the LSDA
# header in .gcc_except_table.
# --------------------------------------------------------------------------

DW_EH_PE_absptr = 0x00
DW_EH_PE_uleb128 = 0x01
DW_EH_PE_udata2 = 0x02
DW_EH_PE_udata4 = 0x03
DW_EH_PE_udata8 = 0x04
DW_EH_PE_sleb128 = 0x09
DW_EH_PE_sdata2 = 0x0A
DW_EH_PE_sdata4 = 0x0B
DW_EH_PE_sdata8 = 0x0C

DW_EH_PE_pcrel = 0x10
DW_EH_PE_textrel = 0x20
DW_EH_PE_datarel = 0x30
DW_EH_PE_funcrel = 0x40
DW_EH_PE_aligned = 0x50
DW_EH_PE_indirect = 0x80

DW_EH_PE_omit = 0xFF

SECTION_TEXT = ".text"
SECTION_PLT = ".plt"
SECTION_PLT_SEC = ".plt.sec"
SECTION_PLT_GOT = ".plt.got"
SECTION_EH_FRAME = ".eh_frame"
SECTION_EH_FRAME_HDR = ".eh_frame_hdr"
SECTION_GCC_EXCEPT_TABLE = ".gcc_except_table"
