"""The ``.note.gnu.property`` section: CET feature advertisement.

A CET-enabled binary declares its hardware-security features in a
``GNU_PROPERTY_X86_FEATURE_1_AND`` note (IBT and/or SHSTK bits); the
kernel and dynamic loader read it to decide whether to enforce CET for
the process. "CET-enabled binary" in the paper (§II) means exactly:
compiled with ``-fcf-protection=full``, which sets both bits here.

This module parses and emits the note, giving FunSeeker the same
is-this-binary-CET check production tooling uses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.elf.parser import ELFFile
from repro.elf.reader import ByteReader, ReaderError
from repro.errors import Diagnostics

SECTION_NAME = ".note.gnu.property"

NT_GNU_PROPERTY_TYPE_0 = 5
GNU_PROPERTY_X86_FEATURE_1_AND = 0xC0000002
GNU_PROPERTY_X86_FEATURE_1_IBT = 0x1
GNU_PROPERTY_X86_FEATURE_1_SHSTK = 0x2


@dataclass(frozen=True)
class CetFeatures:
    """The CET feature bits a binary advertises."""

    ibt: bool = False
    shstk: bool = False

    @property
    def full(self) -> bool:
        """Both mechanisms on — the compiler default the paper relies
        on (``-fcf-protection=full``)."""
        return self.ibt and self.shstk

    @property
    def any(self) -> bool:
        return self.ibt or self.shstk


def parse_cet_features(
    elf: ELFFile, *, diagnostics: Diagnostics | None = None
) -> CetFeatures:
    """Read the advertised CET features; absent note means none.

    A truncated or malformed note yields whatever feature bits were
    decoded before the corruption (the partial property set). The
    tolerated error is recorded on ``diagnostics`` when given, falling
    back to the file's own collector — never silently swallowed.
    """
    sec = elf.section(SECTION_NAME)
    if sec is None or not sec.data:
        return CetFeatures()
    sink = diagnostics if diagnostics is not None else elf.diagnostics
    features, error = _parse_note(sec.data, elf.is64)
    if error is not None:
        sink.record(
            "gnu_property",
            f"malformed .note.gnu.property: {error}",
            address=sec.sh_addr,
            error=error,
        )
    return features


def _parse_note(
    data: bytes, is64: bool
) -> tuple[CetFeatures, ReaderError | None]:
    """Decode the note, returning the features found so far alongside
    the error that stopped the walk (``None`` on a clean parse)."""
    r = ByteReader(data)
    align = 8 if is64 else 4
    try:
        while r.remaining() >= 12:
            namesz = r.u32()
            descsz = r.u32()
            note_type = r.u32()
            name = r.bytes(namesz)
            r.skip((-namesz) % 4)
            desc_start = r.pos
            if note_type == NT_GNU_PROPERTY_TYPE_0 and name == b"GNU\x00":
                features = _parse_properties(r, desc_start + descsz, align)
                if features is not None:
                    return features, None
            r.seek(desc_start + descsz + ((-descsz) % align))
    except ReaderError as exc:
        return CetFeatures(), exc
    return CetFeatures(), None


def _parse_properties(
    r: ByteReader, desc_end: int, align: int
) -> CetFeatures | None:
    while r.pos + 8 <= desc_end:
        pr_type = r.u32()
        pr_datasz = r.u32()
        data_start = r.pos
        if pr_type == GNU_PROPERTY_X86_FEATURE_1_AND and pr_datasz >= 4:
            bits = r.u32()
            return CetFeatures(
                ibt=bool(bits & GNU_PROPERTY_X86_FEATURE_1_IBT),
                shstk=bool(bits & GNU_PROPERTY_X86_FEATURE_1_SHSTK),
            )
        r.seek(data_start + pr_datasz + ((-pr_datasz) % align))
    return None


def build_cet_note(*, ibt: bool = True, shstk: bool = True,
                   is64: bool = True) -> bytes:
    """Serialize the note a CET-compiling toolchain emits."""
    align = 8 if is64 else 4
    bits = (GNU_PROPERTY_X86_FEATURE_1_IBT if ibt else 0) \
        | (GNU_PROPERTY_X86_FEATURE_1_SHSTK if shstk else 0)
    prop = struct.pack("<III", GNU_PROPERTY_X86_FEATURE_1_AND, 4, bits)
    prop += b"\x00" * ((-len(prop)) % align)
    name = b"GNU\x00"
    header = struct.pack("<III", len(name), len(prop),
                         NT_GNU_PROPERTY_TYPE_0)
    return header + name + prop
