"""Typed models for parsed ELF structures."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf import constants as C


@dataclass(frozen=True)
class ElfHeader:
    """The ELF file header (``Elf32_Ehdr`` / ``Elf64_Ehdr``)."""

    ei_class: int
    ei_data: int
    e_type: int
    e_machine: int
    e_entry: int
    e_phoff: int
    e_shoff: int
    e_flags: int
    e_ehsize: int
    e_phentsize: int
    e_phnum: int
    e_shentsize: int
    e_shnum: int
    e_shstrndx: int

    @property
    def is64(self) -> bool:
        return self.ei_class == C.ELFCLASS64

    @property
    def is_pie(self) -> bool:
        """Whether the file is a position-independent executable.

        Shared objects and PIEs share ``ET_DYN``; for this project's corpus
        (executables only) ET_DYN implies PIE.
        """
        return self.e_type == C.ET_DYN


@dataclass(frozen=True)
class Section:
    """A section header plus its raw contents."""

    index: int
    name: str
    sh_type: int
    sh_flags: int
    sh_addr: int
    sh_offset: int
    sh_size: int
    sh_link: int
    sh_info: int
    sh_addralign: int
    sh_entsize: int
    data: bytes

    @property
    def is_alloc(self) -> bool:
        return bool(self.sh_flags & C.SHF_ALLOC)

    @property
    def is_exec(self) -> bool:
        return bool(self.sh_flags & C.SHF_EXECINSTR)

    @property
    def end_addr(self) -> int:
        return self.sh_addr + self.sh_size

    def contains_addr(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this section's virtual range."""
        return self.sh_addr <= addr < self.end_addr


@dataclass(frozen=True)
class Segment:
    """A program header entry."""

    p_type: int
    p_flags: int
    p_offset: int
    p_vaddr: int
    p_paddr: int
    p_filesz: int
    p_memsz: int
    p_align: int


@dataclass(frozen=True)
class Symbol:
    """A symbol-table entry with its name resolved."""

    name: str
    value: int
    size: int
    info: int
    other: int
    shndx: int

    @property
    def bind(self) -> int:
        return C.st_bind(self.info)

    @property
    def type(self) -> int:
        return C.st_type(self.info)

    @property
    def is_function(self) -> bool:
        return self.type == C.STT_FUNC

    @property
    def is_defined(self) -> bool:
        return self.shndx != C.SHN_UNDEF

    @property
    def is_local(self) -> bool:
        return self.bind == C.STB_LOCAL


@dataclass(frozen=True)
class Relocation:
    """A REL/RELA entry with the referenced symbol name resolved."""

    offset: int
    type: int
    symbol_index: int
    symbol_name: str
    addend: int = 0
