"""DWARF debug-info substrate (ground-truth channel, paper §V-A1)."""

from repro.elf.dwarf.parser import (
    AbbrevDecl,
    DwarfError,
    Subprogram,
    parse_abbrev_table,
    parse_subprograms,
)
from repro.elf.dwarf.writer import FunctionDebugInfo, build_debug_info

__all__ = [
    "AbbrevDecl",
    "DwarfError",
    "FunctionDebugInfo",
    "Subprogram",
    "build_debug_info",
    "parse_abbrev_table",
    "parse_subprograms",
]
