"""DWARF constants (subset relevant to function-identification ground
truth).

Tag/attribute/form codes follow the DWARF 4 and DWARF 5 standards. The
parser must *skip* arbitrary attributes correctly, so the form list is
complete for DWARF 5 even though only a handful of attributes are
interpreted.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Tags (DW_TAG_*)
# --------------------------------------------------------------------------

DW_TAG_compile_unit = 0x11
DW_TAG_subprogram = 0x2E
DW_TAG_inlined_subroutine = 0x1D

# --------------------------------------------------------------------------
# Attributes (DW_AT_*)
# --------------------------------------------------------------------------

DW_AT_name = 0x03
DW_AT_low_pc = 0x11
DW_AT_high_pc = 0x12
DW_AT_producer = 0x25
DW_AT_comp_dir = 0x1B
DW_AT_external = 0x3F
DW_AT_declaration = 0x3C
DW_AT_abstract_origin = 0x31
DW_AT_specification = 0x47
DW_AT_linkage_name = 0x6E
DW_AT_str_offsets_base = 0x72
DW_AT_addr_base = 0x73

# --------------------------------------------------------------------------
# Forms (DW_FORM_*) — complete through DWARF 5
# --------------------------------------------------------------------------

DW_FORM_addr = 0x01
DW_FORM_block2 = 0x03
DW_FORM_block4 = 0x04
DW_FORM_data2 = 0x05
DW_FORM_data4 = 0x06
DW_FORM_data8 = 0x07
DW_FORM_string = 0x08
DW_FORM_block = 0x09
DW_FORM_block1 = 0x0A
DW_FORM_data1 = 0x0B
DW_FORM_flag = 0x0C
DW_FORM_sdata = 0x0D
DW_FORM_strp = 0x0E
DW_FORM_udata = 0x0F
DW_FORM_ref_addr = 0x10
DW_FORM_ref1 = 0x11
DW_FORM_ref2 = 0x12
DW_FORM_ref4 = 0x13
DW_FORM_ref8 = 0x14
DW_FORM_ref_udata = 0x15
DW_FORM_indirect = 0x16
DW_FORM_sec_offset = 0x17
DW_FORM_exprloc = 0x18
DW_FORM_flag_present = 0x19
DW_FORM_strx = 0x1A
DW_FORM_addrx = 0x1B
DW_FORM_ref_sup4 = 0x1C
DW_FORM_strp_sup = 0x1D
DW_FORM_data16 = 0x1E
DW_FORM_line_strp = 0x1F
DW_FORM_ref_sig8 = 0x20
DW_FORM_implicit_const = 0x21
DW_FORM_loclistx = 0x22
DW_FORM_rnglistx = 0x23
DW_FORM_ref_sup8 = 0x24
DW_FORM_strx1 = 0x25
DW_FORM_strx2 = 0x26
DW_FORM_strx3 = 0x27
DW_FORM_strx4 = 0x28
DW_FORM_addrx1 = 0x29
DW_FORM_addrx2 = 0x2A
DW_FORM_addrx3 = 0x2B
DW_FORM_addrx4 = 0x2C

# Unit types (DWARF 5 header)
DW_UT_compile = 0x01
DW_UT_partial = 0x03
DW_UT_skeleton = 0x04

DW_CHILDREN_no = 0x00
DW_CHILDREN_yes = 0x01
