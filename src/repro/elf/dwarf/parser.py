"""DWARF debug-info parser for function ground truth (paper §V-A1).

Walks every compile unit of ``.debug_info``, decodes the abbreviation
tables, and extracts ``DW_TAG_subprogram`` DIEs with their name and
``DW_AT_low_pc``/``DW_AT_high_pc``. Supports DWARF versions 2-5,
including the DWARF 5 indirection forms GCC 12 emits by default
(``strx*`` via ``.debug_str_offsets``, ``addrx*`` via ``.debug_addr``).

Attributes that are not interpreted are skipped exactly by form — the
form-size logic is complete through DWARF 5, so unknown producer
variations cannot desynchronize the DIE walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.elf.dwarf import constants as D
from repro.elf.parser import ELFFile
from repro.elf.reader import ByteReader, ReaderError
from repro.errors import ReproError


class DwarfError(ReproError):
    """Raised on malformed DWARF data."""


@dataclass(frozen=True)
class Subprogram:
    """One DW_TAG_subprogram with location info resolved."""

    name: str
    low_pc: int
    high_pc: int  # absolute end address (resolved from offset forms)

    @property
    def size(self) -> int:
        return self.high_pc - self.low_pc


@dataclass
class AbbrevDecl:
    """One abbreviation declaration."""

    tag: int
    has_children: bool
    #: (attribute, form, implicit_const_value) triples.
    attributes: list[tuple[int, int, int]] = field(default_factory=list)


@dataclass
class _Sections:
    info: bytes = b""
    abbrev: bytes = b""
    strtab: bytes = b""
    line_str: bytes = b""
    str_offsets: bytes = b""
    addr: bytes = b""


def parse_subprograms(elf: ELFFile) -> list[Subprogram]:
    """Extract every concrete subprogram from a binary's debug info.

    Declarations and DIEs without a ``low_pc`` (inlined-only instances,
    external declarations) are omitted, as in the paper's ground-truth
    extraction. Returns an empty list for binaries without debug info.
    """
    secs = _Sections(
        info=_section_data(elf, ".debug_info"),
        abbrev=_section_data(elf, ".debug_abbrev"),
        strtab=_section_data(elf, ".debug_str"),
        line_str=_section_data(elf, ".debug_line_str"),
        str_offsets=_section_data(elf, ".debug_str_offsets"),
        addr=_section_data(elf, ".debug_addr"),
    )
    if not secs.info or not secs.abbrev:
        return []
    out: list[Subprogram] = []
    r = ByteReader(secs.info)
    while r.remaining() > 4:
        out.extend(_parse_unit(r, secs))
    return out


def _section_data(elf: ELFFile, name: str) -> bytes:
    sec = elf.section(name)
    return sec.data if sec is not None else b""


# ---------------------------------------------------------------------------
# abbreviation tables
# ---------------------------------------------------------------------------


def parse_abbrev_table(data: bytes, offset: int) -> dict[int, AbbrevDecl]:
    """Parse one abbreviation table starting at ``offset``."""
    table: dict[int, AbbrevDecl] = {}
    r = ByteReader(data, offset)
    try:
        while True:
            code = r.uleb128()
            if code == 0:
                return table
            tag = r.uleb128()
            has_children = r.u8() == D.DW_CHILDREN_yes
            decl = AbbrevDecl(tag=tag, has_children=has_children)
            while True:
                attr = r.uleb128()
                form = r.uleb128()
                const = 0
                if form == D.DW_FORM_implicit_const:
                    const = r.sleb128()
                if attr == 0 and form == 0:
                    break
                decl.attributes.append((attr, form, const))
            table[code] = decl
    except ReaderError as exc:
        raise DwarfError(f"truncated abbreviation table: {exc}") from exc


# ---------------------------------------------------------------------------
# compile units
# ---------------------------------------------------------------------------


def _parse_unit(r: ByteReader, secs: _Sections) -> list[Subprogram]:
    unit_offset = r.pos
    try:
        length = r.u32()
        if length == 0xFFFFFFFF:
            raise DwarfError("64-bit DWARF is not supported")
        unit_end = r.pos + length
        version = r.u16()
        if version < 2 or version > 5:
            raise DwarfError(f"unsupported DWARF version {version}")
        if version >= 5:
            unit_type = r.u8()
            addr_size = r.u8()
            abbrev_offset = r.u32()
            if unit_type == D.DW_UT_skeleton:
                r.u64()  # dwo_id
        else:
            abbrev_offset = r.u32()
            addr_size = r.u8()
    except ReaderError as exc:
        raise DwarfError(f"truncated CU header at {unit_offset}") from exc

    abbrevs = parse_abbrev_table(secs.abbrev, abbrev_offset)
    ctx = _UnitContext(version=version, addr_size=addr_size, secs=secs)
    subprograms: list[Subprogram] = []

    try:
        while r.pos < unit_end:
            code = r.uleb128()
            if code == 0:
                continue  # null DIE (end of a sibling chain)
            decl = abbrevs.get(code)
            if decl is None:
                raise DwarfError(f"unknown abbreviation code {code}")
            die = _parse_die(r, decl, ctx)
            if decl.tag == D.DW_TAG_compile_unit:
                ctx.str_offsets_base = die.get(
                    D.DW_AT_str_offsets_base, ctx.str_offsets_base)
                ctx.addr_base = die.get(D.DW_AT_addr_base, ctx.addr_base)
                # Resolve deferred indices now that the bases are known.
                _resolve_indirect(die, ctx)
            sub = _subprogram_from_die(decl, die, ctx)
            if sub is not None:
                subprograms.append(sub)
    except ReaderError as exc:
        raise DwarfError(f"truncated DIE stream: {exc}") from exc
    r.seek(unit_end)
    return subprograms


@dataclass
class _UnitContext:
    version: int
    addr_size: int
    secs: _Sections
    # DWARF 5 table bases (header-skipping defaults applied lazily).
    str_offsets_base: int = 8
    addr_base: int = 8


class _Strx:
    """Deferred .debug_str_offsets index (base may come later)."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


class _Addrx:
    """Deferred .debug_addr index."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


def _parse_die(
    r: ByteReader, decl: AbbrevDecl, ctx: _UnitContext
) -> dict[int, object]:
    values: dict[int, object] = {}
    for attr, form, const in decl.attributes:
        value = _read_form(r, form, const, ctx)
        if attr in (D.DW_AT_name, D.DW_AT_linkage_name, D.DW_AT_low_pc,
                    D.DW_AT_high_pc, D.DW_AT_declaration,
                    D.DW_AT_external, D.DW_AT_str_offsets_base,
                    D.DW_AT_addr_base):
            values[attr] = value
    return values


def _read_form(r: ByteReader, form: int, const: int, ctx: _UnitContext):
    if form == D.DW_FORM_addr:
        return r.uword(ctx.addr_size == 8)
    if form in (D.DW_FORM_data1, D.DW_FORM_ref1, D.DW_FORM_strx1,
                D.DW_FORM_addrx1, D.DW_FORM_flag):
        value = r.u8()
    elif form in (D.DW_FORM_data2, D.DW_FORM_ref2, D.DW_FORM_strx2,
                  D.DW_FORM_addrx2):
        value = r.u16()
    elif form in (D.DW_FORM_strx3, D.DW_FORM_addrx3):
        value = int.from_bytes(r.bytes(3), "little")
    elif form in (D.DW_FORM_data4, D.DW_FORM_ref4, D.DW_FORM_sec_offset,
                  D.DW_FORM_strp, D.DW_FORM_line_strp, D.DW_FORM_ref_addr,
                  D.DW_FORM_ref_sup4, D.DW_FORM_strp_sup,
                  D.DW_FORM_strx4, D.DW_FORM_addrx4):
        value = r.u32()
    elif form in (D.DW_FORM_data8, D.DW_FORM_ref8, D.DW_FORM_ref_sig8,
                  D.DW_FORM_ref_sup8):
        value = r.u64()
    elif form == D.DW_FORM_data16:
        value = int.from_bytes(r.bytes(16), "little")
    elif form in (D.DW_FORM_udata, D.DW_FORM_ref_udata, D.DW_FORM_strx,
                  D.DW_FORM_addrx, D.DW_FORM_loclistx, D.DW_FORM_rnglistx):
        value = r.uleb128()
    elif form == D.DW_FORM_sdata:
        value = r.sleb128()
    elif form == D.DW_FORM_string:
        return r.cstring().decode("utf-8", errors="replace")
    elif form == D.DW_FORM_block1:
        value = r.bytes(r.u8())
    elif form == D.DW_FORM_block2:
        value = r.bytes(r.u16())
    elif form == D.DW_FORM_block4:
        value = r.bytes(r.u32())
    elif form in (D.DW_FORM_block, D.DW_FORM_exprloc):
        value = r.bytes(r.uleb128())
    elif form == D.DW_FORM_flag_present:
        return True
    elif form == D.DW_FORM_implicit_const:
        return const
    elif form == D.DW_FORM_indirect:
        real_form = r.uleb128()
        return _read_form(r, real_form, const, ctx)
    else:
        raise DwarfError(f"unhandled DWARF form {form:#x}")

    # Post-process the string / address indirections.
    if form == D.DW_FORM_strp:
        return _str_at(ctx.secs.strtab, value)
    if form == D.DW_FORM_line_strp:
        return _str_at(ctx.secs.line_str, value)
    if form in (D.DW_FORM_strx, D.DW_FORM_strx1, D.DW_FORM_strx2,
                D.DW_FORM_strx3, D.DW_FORM_strx4):
        return _Strx(value)
    if form in (D.DW_FORM_addrx, D.DW_FORM_addrx1, D.DW_FORM_addrx2,
                D.DW_FORM_addrx3, D.DW_FORM_addrx4):
        return _Addrx(value)
    return value


def _resolve_indirect(die: dict[int, object], ctx: _UnitContext) -> None:
    for attr, value in list(die.items()):
        die[attr] = _resolve_value(value, ctx)


def _resolve_value(value, ctx: _UnitContext):
    if isinstance(value, _Strx):
        pos = ctx.str_offsets_base + 4 * value.index
        if pos + 4 > len(ctx.secs.str_offsets):
            return ""
        offset = int.from_bytes(
            ctx.secs.str_offsets[pos : pos + 4], "little")
        return _str_at(ctx.secs.strtab, offset)
    if isinstance(value, _Addrx):
        width = ctx.addr_size
        pos = ctx.addr_base + width * value.index
        if pos + width > len(ctx.secs.addr):
            return 0
        return int.from_bytes(ctx.secs.addr[pos : pos + width], "little")
    return value


def _subprogram_from_die(
    decl: AbbrevDecl, die: dict[int, object], ctx: _UnitContext
) -> Subprogram | None:
    if decl.tag != D.DW_TAG_subprogram:
        return None
    if die.get(D.DW_AT_declaration):
        return None
    low = _resolve_value(die.get(D.DW_AT_low_pc), ctx)
    if not isinstance(low, int) or low == 0:
        return None
    high = _resolve_value(die.get(D.DW_AT_high_pc), ctx)
    if isinstance(high, int):
        # DWARF 4+: a non-addr form means "offset from low_pc".
        high_pc = high if high > low else low + high
    else:
        high_pc = low
    name = _resolve_value(
        die.get(D.DW_AT_name) or die.get(D.DW_AT_linkage_name) or "", ctx)
    if not isinstance(name, str):
        name = ""
    return Subprogram(name=name, low_pc=low, high_pc=high_pc)


def _str_at(table: bytes, offset: int) -> str:
    if offset >= len(table):
        return ""
    end = table.find(b"\x00", offset)
    if end < 0:
        end = len(table)
    return table[offset:end].decode("utf-8", errors="replace")
