"""DWARF debug-info writer (DWARF 4).

Emits the three sections a debugger (or a ground-truth extractor) needs
to enumerate functions: ``.debug_abbrev``, ``.debug_info`` and
``.debug_str``. One compile unit is produced per program, with a
``DW_TAG_subprogram`` DIE per function — mirroring what ``gcc -g``
records and what the paper reads its ground truth from (§V-A1).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.elf.dwarf import constants as D


@dataclass(frozen=True)
class FunctionDebugInfo:
    """Debug-info record for one function."""

    name: str
    low_pc: int
    size: int
    external: bool = True


def _uleb(value: int) -> bytes:
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


#: Abbreviation codes used by the writer.
_ABBREV_CU = 1
_ABBREV_SUBPROGRAM = 2


def build_abbrev() -> bytes:
    """The fixed two-entry abbreviation table."""
    out = bytearray()
    # CU: name (strp), producer (strp), children yes.
    out += _uleb(_ABBREV_CU)
    out += _uleb(D.DW_TAG_compile_unit)
    out.append(D.DW_CHILDREN_yes)
    for attr, form in ((D.DW_AT_name, D.DW_FORM_strp),
                       (D.DW_AT_producer, D.DW_FORM_strp)):
        out += _uleb(attr) + _uleb(form)
    out += _uleb(0) + _uleb(0)
    # Subprogram: name (strp), low_pc (addr), high_pc (data8 offset),
    # external (flag).
    out += _uleb(_ABBREV_SUBPROGRAM)
    out += _uleb(D.DW_TAG_subprogram)
    out.append(D.DW_CHILDREN_no)
    for attr, form in ((D.DW_AT_name, D.DW_FORM_strp),
                       (D.DW_AT_low_pc, D.DW_FORM_addr),
                       (D.DW_AT_high_pc, D.DW_FORM_data8),
                       (D.DW_AT_external, D.DW_FORM_flag)):
        out += _uleb(attr) + _uleb(form)
    out += _uleb(0) + _uleb(0)
    out += _uleb(0)  # table terminator
    return bytes(out)


def build_debug_info(
    program_name: str,
    functions: list[FunctionDebugInfo],
    *,
    addr_size: int = 8,
) -> tuple[bytes, bytes, bytes]:
    """Build (.debug_info, .debug_abbrev, .debug_str) for one program."""
    strtab = bytearray(b"\x00")
    offsets: dict[str, int] = {"": 0}

    def intern(s: str) -> int:
        if s not in offsets:
            offsets[s] = len(strtab)
            strtab.extend(s.encode() + b"\x00")
        return offsets[s]

    body = bytearray()
    body += struct.pack("<H", 4)           # version
    body += struct.pack("<I", 0)           # abbrev offset
    body.append(addr_size)

    body += _uleb(_ABBREV_CU)
    body += struct.pack("<I", intern(program_name))
    body += struct.pack("<I", intern("repro synthetic toolchain 1.0"))

    for fn in functions:
        body += _uleb(_ABBREV_SUBPROGRAM)
        body += struct.pack("<I", intern(fn.name))
        body += fn.low_pc.to_bytes(addr_size, "little")
        body += struct.pack("<Q", fn.size)
        body.append(1 if fn.external else 0)

    body += _uleb(0)                       # end of CU children

    info = struct.pack("<I", len(body)) + bytes(body)
    return info, build_abbrev(), bytes(strtab)
