"""ELF image builder.

Produces complete, well-formed ELF executables from section contents.
Used by the synthetic CET toolchain (:mod:`repro.synth`) to materialize
generated programs so that every analysis in this project consumes real
ELF files — the same code path a downstream user runs on binaries from
disk.

The builder lays sections out in ascending virtual-address order,
keeping file offsets congruent with virtual addresses modulo the page
size (as real linkers do), and synthesizes LOAD segments from the
section permission runs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.elf import constants as C

_PAGE = 0x1000


@dataclass
class SectionSpec:
    """One section to be placed in the output image."""

    name: str
    sh_type: int
    sh_flags: int
    data: bytes
    sh_addr: int = 0
    sh_link: int = 0
    sh_info: int = 0
    sh_addralign: int = 1
    sh_entsize: int = 0
    # Filled in during layout:
    index: int = -1
    sh_offset: int = 0


@dataclass
class SymbolSpec:
    """One symbol-table entry to emit.

    ``section`` names the section the symbol belongs to; the writer
    resolves it to the final ``st_shndx`` at build time. An empty
    string produces ``SHN_UNDEF``.
    """

    name: str
    value: int
    size: int
    bind: int
    typ: int
    section: str = ""
    visibility: int = C.STV_DEFAULT


@dataclass
class ElfWriter:
    """Builds an ELF executable image.

    Parameters
    ----------
    is64:
        Emit ELFCLASS64 (x86-64 / AArch64) or ELFCLASS32 (x86).
    machine:
        ``e_machine`` value.
    pie:
        Emit ``ET_DYN`` (position-independent) or ``ET_EXEC``.
    base_addr:
        Virtual address of the first byte of the file image.
    """

    is64: bool
    machine: int
    pie: bool
    base_addr: int = 0
    entry: int = 0
    sections: list[SectionSpec] = field(default_factory=list)
    symbols: list[SymbolSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.base_addr == 0:
            self.base_addr = 0 if self.pie else (0x400000 if self.is64 else 0x8048000)

    # -- construction API -----------------------------------------------------

    def add_section(self, spec: SectionSpec) -> SectionSpec:
        """Register a section. Address assignment happens in :meth:`build`
        unless ``sh_addr`` is already set."""
        self.sections.append(spec)
        return spec

    def add_symbol(self, spec: SymbolSpec) -> None:
        self.symbols.append(spec)

    # -- emission ----------------------------------------------------------------

    def build(self) -> bytes:
        """Serialize the image.

        Sections must already carry their final ``sh_addr`` (the synth
        linker assigns addresses before writing) — the writer validates
        monotonicity, computes file offsets, emits symbol/string tables,
        program headers, and the section header table.
        """
        alloc = [s for s in self.sections if s.sh_flags & C.SHF_ALLOC]
        alloc.sort(key=lambda s: s.sh_addr)
        for prev, cur in zip(alloc, alloc[1:]):
            if cur.sh_addr < prev.sh_addr + len(prev.data):
                raise ValueError(
                    f"sections overlap: {prev.name} and {cur.name}"
                )

        ehsize = 64 if self.is64 else 52
        phentsize = 56 if self.is64 else 32
        shentsize = 64 if self.is64 else 40

        segments = self._plan_segments(alloc)
        phnum = len(segments)
        header_end = ehsize + phnum * phentsize

        # File offsets: congruent to vaddr modulo page size, ascending.
        file_pos = header_end
        for sec in alloc:
            if sec.sh_addr - self.base_addr < header_end and sec.sh_addr:
                # Sections may not overlay the ELF header region.
                raise ValueError(
                    f"section {sec.name} overlaps ELF header area"
                )
            target = (sec.sh_addr - self.base_addr) % _PAGE
            if file_pos % _PAGE != target:
                file_pos += (target - file_pos) % _PAGE
            sec.sh_offset = file_pos
            file_pos += len(sec.data)

        # Symbol tables and string tables (non-alloc, appended at the end).
        # Placeholders first: section indices must exist before symbol
        # st_shndx fields can be resolved.
        symtab, strsec = self._symtab_placeholders()
        all_sections = self._assemble_section_list(alloc, [symtab, strsec])
        name_to_index = {s.name: s.index for s in all_sections}
        self._fill_symtab(symtab, strsec, name_to_index)
        for sec in all_sections:
            if sec.sh_flags & C.SHF_ALLOC or sec.sh_type == C.SHT_NULL:
                continue
            align = max(sec.sh_addralign, 1)
            file_pos += (-file_pos) % align
            sec.sh_offset = file_pos
            file_pos += len(sec.data)

        shoff = file_pos + (-file_pos) % 8

        out = bytearray(shoff + shentsize * len(all_sections))
        self._write_ehdr(out, ehsize, phentsize, phnum, shentsize,
                         len(all_sections), shoff,
                         shstrndx=len(all_sections) - 1)
        self._write_phdrs(out, ehsize, segments, header_end)
        for sec in all_sections:
            if sec.sh_type in (C.SHT_NULL, C.SHT_NOBITS) or not sec.data:
                continue
            out[sec.sh_offset : sec.sh_offset + len(sec.data)] = sec.data
        self._write_shdrs(out, shoff, shentsize, all_sections)
        return bytes(out)

    # -- internals ----------------------------------------------------------------

    def _plan_segments(self, alloc: list[SectionSpec]) -> list[tuple]:
        """Group consecutive alloc sections with equal permissions into
        PT_LOAD segments; add PT_GNU_STACK."""
        segments: list[tuple] = []
        run: list[SectionSpec] = []

        def flags_of(sec: SectionSpec) -> int:
            f = C.PF_R
            if sec.sh_flags & C.SHF_WRITE:
                f |= C.PF_W
            if sec.sh_flags & C.SHF_EXECINSTR:
                f |= C.PF_X
            return f

        def flush() -> None:
            if not run:
                return
            lo = run[0]
            hi = run[-1]
            segments.append(
                (C.PT_LOAD, flags_of(lo), lo.sh_addr,
                 hi.sh_addr + len(hi.data) - lo.sh_addr)
            )
            run.clear()

        current = -1
        for sec in alloc:
            f = flags_of(sec)
            if f != current:
                flush()
                current = f
            run.append(sec)
        flush()
        segments.append((C.PT_GNU_STACK, C.PF_R | C.PF_W, 0, 0))
        return segments

    def _symtab_placeholders(self) -> tuple[SectionSpec, SectionSpec]:
        entsize = 24 if self.is64 else 16
        symtab = SectionSpec(
            name=".symtab", sh_type=C.SHT_SYMTAB, sh_flags=0, data=b"",
            sh_addralign=8 if self.is64 else 4, sh_entsize=entsize,
        )
        strsec = SectionSpec(
            name=".strtab", sh_type=C.SHT_STRTAB, sh_flags=0, data=b"",
        )
        return symtab, strsec

    def _fill_symtab(
        self, symtab: SectionSpec, strsec: SectionSpec,
        name_to_index: dict[str, int],
    ) -> None:
        strtab = bytearray(b"\x00")
        name_off: dict[str, int] = {"": 0}

        def intern(name: str) -> int:
            if name not in name_off:
                name_off[name] = len(strtab)
                strtab.extend(name.encode() + b"\x00")
            return name_off[name]

        entsize = symtab.sh_entsize
        symdata = bytearray(entsize)  # index 0: the null symbol
        # Locals must precede globals; sh_info is the first global index.
        ordered = sorted(self.symbols, key=lambda s: s.bind != C.STB_LOCAL)
        first_global = 1 + sum(1 for s in ordered if s.bind == C.STB_LOCAL)
        for sym in ordered:
            shndx = name_to_index.get(sym.section, C.SHN_UNDEF)
            symdata.extend(self._pack_symbol(sym, intern(sym.name), shndx))
        symtab.data = bytes(symdata)
        symtab.sh_info = first_global
        strsec.data = bytes(strtab)

    def _pack_symbol(
        self, sym: SymbolSpec, name_offset: int, shndx: int
    ) -> bytes:
        info = C.st_info(sym.bind, sym.typ)
        if self.is64:
            return struct.pack(
                "<IBBHQQ", name_offset, info, sym.visibility,
                shndx, sym.value, sym.size,
            )
        return struct.pack(
            "<IIIBBH", name_offset, sym.value, sym.size, info,
            sym.visibility, shndx,
        )

    def _assemble_section_list(
        self, alloc: list[SectionSpec], non_alloc: list[SectionSpec]
    ) -> list[SectionSpec]:
        null = SectionSpec(name="", sh_type=C.SHT_NULL, sh_flags=0, data=b"")
        others = [s for s in self.sections
                  if not (s.sh_flags & C.SHF_ALLOC)]
        shstr = SectionSpec(
            name=".shstrtab", sh_type=C.SHT_STRTAB, sh_flags=0, data=b""
        )
        all_sections = [null, *alloc, *others, *non_alloc, shstr]

        # Build .shstrtab and fix symtab->strtab link now that indices exist.
        blob = bytearray(b"\x00")
        offsets: dict[str, int] = {"": 0}
        for sec in all_sections:
            if sec.name not in offsets:
                offsets[sec.name] = len(blob)
                blob.extend(sec.name.encode() + b"\x00")
        shstr.data = bytes(blob)
        for i, sec in enumerate(all_sections):
            sec.index = i
        name_to_index = {s.name: s.index for s in all_sections}
        for sec in all_sections:
            if sec.sh_type in (C.SHT_SYMTAB, C.SHT_DYNSYM) and not sec.sh_link:
                link_name = ".strtab" if sec.name == ".symtab" else ".dynstr"
                sec.sh_link = name_to_index.get(link_name, 0)
            if sec.sh_type in (C.SHT_RELA, C.SHT_REL) and not sec.sh_link:
                sec.sh_link = name_to_index.get(".dynsym", 0)
        self._shstr_offsets = offsets
        return all_sections

    def _write_ehdr(
        self, out: bytearray, ehsize: int, phentsize: int, phnum: int,
        shentsize: int, shnum: int, shoff: int, shstrndx: int,
    ) -> None:
        ident = bytearray(16)
        ident[:4] = C.ELFMAG
        ident[C.EI_CLASS] = C.ELFCLASS64 if self.is64 else C.ELFCLASS32
        ident[C.EI_DATA] = C.ELFDATA2LSB
        ident[C.EI_VERSION] = C.EV_CURRENT
        ident[C.EI_OSABI] = C.ELFOSABI_SYSV
        e_type = C.ET_DYN if self.pie else C.ET_EXEC
        if self.is64:
            struct.pack_into(
                "<16sHHIQQQIHHHHHH", out, 0, bytes(ident), e_type,
                self.machine, C.EV_CURRENT, self.entry, ehsize, shoff, 0,
                ehsize, phentsize, phnum, shentsize, shnum, shstrndx,
            )
        else:
            struct.pack_into(
                "<16sHHIIIIIHHHHHH", out, 0, bytes(ident), e_type,
                self.machine, C.EV_CURRENT, self.entry, ehsize, shoff, 0,
                ehsize, phentsize, phnum, shentsize, shnum, shstrndx,
            )

    def _write_phdrs(
        self, out: bytearray, ehsize: int, segments: list[tuple],
        header_end: int,
    ) -> None:
        pos = ehsize
        for p_type, p_flags, vaddr, size in segments:
            if p_type == C.PT_LOAD:
                offset = self._vaddr_to_offset(vaddr)
            else:
                offset = 0
            if self.is64:
                struct.pack_into(
                    "<IIQQQQQQ", out, pos, p_type, p_flags, offset,
                    vaddr, vaddr, size, size, _PAGE,
                )
                pos += 56
            else:
                struct.pack_into(
                    "<IIIIIIII", out, pos, p_type, offset, vaddr, vaddr,
                    size, size, p_flags, _PAGE,
                )
                pos += 32

    def _vaddr_to_offset(self, vaddr: int) -> int:
        for sec in self.sections:
            if not sec.sh_flags & C.SHF_ALLOC:
                continue
            if sec.sh_addr <= vaddr < sec.sh_addr + max(len(sec.data), 1):
                return sec.sh_offset + (vaddr - sec.sh_addr)
        return 0

    def _write_shdrs(
        self, out: bytearray, shoff: int, shentsize: int,
        sections: list[SectionSpec],
    ) -> None:
        for i, sec in enumerate(sections):
            pos = shoff + i * shentsize
            name_off = self._shstr_offsets.get(sec.name, 0)
            size = len(sec.data)
            offset = sec.sh_offset if sec.sh_type != C.SHT_NULL else 0
            if self.is64:
                struct.pack_into(
                    "<IIQQQQIIQQ", out, pos, name_off, sec.sh_type,
                    sec.sh_flags, sec.sh_addr, offset, size,
                    sec.sh_link, sec.sh_info, sec.sh_addralign,
                    sec.sh_entsize,
                )
            else:
                struct.pack_into(
                    "<IIIIIIIIII", out, pos, name_off, sec.sh_type,
                    sec.sh_flags, sec.sh_addr, offset, size,
                    sec.sh_link, sec.sh_info, sec.sh_addralign,
                    sec.sh_entsize,
                )
