"""Error taxonomy and structured diagnostics for the analysis pipeline.

Every exception this project raises on malformed input derives from
:class:`ReproError`, so callers can distinguish *documented* failure
modes (a truncated ``.eh_frame``, an out-of-range string-table index)
from genuine bugs (``IndexError`` escaping a parser).

The second half of the module is the degraded-mode machinery: instead
of aborting on a structure-level error, a parser may record a
:class:`Diagnostic` into a :class:`Diagnostics` collector and continue
with partial results. The collector is threaded through
:class:`~repro.elf.parser.ELFFile`, the exception-metadata parsers, and
:class:`~repro.core.funseeker.FunSeeker`, and surfaces on
``FunSeekerResult.diagnostics``.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass, field


class ReproError(Exception):
    """Base class of every documented analysis-pipeline error."""


class MalformedELFError(ReproError):
    """Structural corruption of an analyzed binary image.

    Base of every *permanent* parse rejection: the input itself is
    broken, so re-running the same cell deterministically fails again.
    The retry machinery (:func:`repro.eval.isolation.run_cell`) fails
    fast on this branch of the taxonomy instead of burning attempts.
    """


class EvaluationError(ReproError):
    """Raised by the evaluation harness itself (not by parsers)."""


class CellTimeoutError(EvaluationError):
    """One (binary, tool) evaluation cell exceeded its wall-clock budget."""


class EvaluationAborted(EvaluationError):
    """A fail-fast evaluation sweep stopped at its first failure."""


class JournalError(EvaluationError):
    """A run journal could not be read, written, or matched."""


class JournalWriteError(JournalError):
    """An append to the run journal failed (e.g. disk full).

    The journal is the crash-safety substrate: silently dropping an
    append would turn the next ``--resume`` into silent recomputation
    loss, so write failures abort the sweep instead of degrading.
    """


class ManifestMismatchError(JournalError):
    """``--resume`` pointed at a journal of a *different* run.

    Raised when the resumed run's corpus fingerprint or tool set does
    not match the manifest recorded at journal-creation time.
    """


class ManifestCorruptError(JournalError):
    """A run directory's manifest exists but cannot be parsed.

    Distinct from :class:`ManifestMismatchError` — a mismatch means the
    journal describes a *different, valid* run (the corpus or tool set
    changed, an actionable operator error), while corruption means the
    run directory itself is damaged and resuming is impossible. The
    service resume path and ``evaluate --resume`` report the two
    differently.
    """


class ServiceError(ReproError):
    """Raised by the analysis service (:mod:`repro.service`)."""


class QueueFullError(ServiceError):
    """The bounded job queue cannot admit another submission.

    Carries ``retry_after`` (seconds) — the HTTP layer surfaces it as
    a ``429`` with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServiceUnavailableError(ServiceError):
    """The service is degraded (read-only) or draining.

    Raised on write-path admission while the manager cannot make new
    durability guarantees (e.g. the journal or blob store hit ENOSPC).
    The HTTP layer surfaces it as ``503`` with a ``Retry-After``
    header; reads keep being served.
    """

    def __init__(self, message: str, retry_after: float = 30.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class WorkerLostError(ServiceError):
    """A supervised worker process died or was killed mid-task.

    ``reason`` distinguishes how the worker was lost: ``"crash"`` (the
    child exited/was SIGKILLed), ``"deadline"`` (the supervisor's
    backstop killed a wedged worker), ``"unresponsive"`` (heartbeats
    stopped), ``"shutdown"`` (the pool was being torn down). The loss
    is *transient by classification* — the job manager retries the job
    on a fresh worker and escalates to poison-quarantine only after
    repeated losses, so this must never be journaled as a permanent
    ``job-failed``.
    """

    def __init__(self, message: str, *, reason: str = "crash",
                 exitcode: int | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.exitcode = exitcode


class InjectedFaultError(ReproError):
    """Base of faults raised by the :mod:`repro.faults` registry."""


class TransientFaultError(InjectedFaultError):
    """An injected *transient* fault: retrying is expected to succeed."""


class PermanentFaultError(InjectedFaultError, MalformedELFError):
    """An injected *permanent* fault: retrying must not be attempted."""


class FuzzInvariantError(ReproError):
    """The fault-injection harness observed an invariant violation."""


#: Error taxonomy branches considered *transient* by the retry
#: machinery: re-running the cell has a real chance of succeeding.
#: Everything on the permanent list below deterministically recurs.
#: A lost supervised worker is transient: the poison-threshold
#: accounting in the job manager — not the taxonomy — decides when
#: repeated losses become a permanent failure.
TRANSIENT_ERROR_TYPES = (OSError, TransientFaultError, WorkerLostError)


def is_permanent_failure(error: BaseException) -> bool:
    """Whether a cell failure is deterministic and must not be retried.

    Permanent: structural input corruption (:class:`MalformedELFError`
    and every other documented parse rejection under
    :class:`ReproError`), injected permanent faults, and
    :class:`MemoryError` (an RSS-ceiling kill recurs at the same
    allocation). Transient: I/O-level :class:`OSError`\\ s and injected
    transient faults. Anything undocumented (a genuine bug escaping
    the pipeline) stays retryable, preserving the historical behavior
    for unknown exception types.
    """
    if isinstance(error, MemoryError):
        return True
    if isinstance(error, TRANSIENT_ERROR_TYPES):
        return False
    if isinstance(error, ReproError):
        # Documented rejections are deterministic — except the
        # harness's own control-flow errors, which never reach the
        # retry loop anyway.
        return not isinstance(error, EvaluationError)
    return False


class Severity(enum.Enum):
    """How badly a recorded anomaly degrades the analysis."""

    #: Harmless irregularity; results unaffected.
    INFO = "info"
    #: Partial results: some structure was skipped or truncated.
    WARNING = "warning"
    #: A whole analysis stage was abandoned.
    ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One structured record of a tolerated parse anomaly.

    Parameters
    ----------
    source:
        The subsystem that observed the anomaly (``"elf"``,
        ``"eh_frame"``, ``"eh_frame_hdr"``, ``"lsda"``,
        ``"gnu_property"``, ``"plt"``, ``"funseeker"``, ``"eval"``).
    message:
        Human-readable description.
    severity:
        Impact classification.
    address:
        Virtual address or file offset the anomaly was observed at,
        when one is meaningful.
    error_type:
        Class name of the exception that was tolerated, if any.
    """

    source: str
    message: str
    severity: Severity = Severity.WARNING
    address: int | None = None
    error_type: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready representation (the documented diagnostics schema)."""
        return {
            "source": self.source,
            "message": self.message,
            "severity": self.severity.value,
            "address": self.address,
            "error_type": self.error_type,
        }


@dataclass
class Diagnostics:
    """Append-only collector of :class:`Diagnostic` records.

    One collector instance is shared across all parsing stages of a
    single binary, so the final result carries the complete account of
    everything that was tolerated along the way.
    """

    records: list[Diagnostic] = field(default_factory=list)

    def record(
        self,
        source: str,
        message: str,
        *,
        severity: Severity = Severity.WARNING,
        address: int | None = None,
        error: BaseException | None = None,
    ) -> Diagnostic:
        """Append one diagnostic and return it."""
        diag = Diagnostic(
            source=source,
            message=message,
            severity=severity,
            address=address,
            error_type=type(error).__name__ if error is not None else None,
        )
        self.records.append(diag)
        return diag

    def merge(self, other: "Diagnostics") -> None:
        self.records.extend(other.records)

    def by_source(self, source: str) -> list[Diagnostic]:
        return [d for d in self.records if d.source == source]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        # Truthiness means "collector exists", not "non-empty": parsers
        # test ``if diagnostics:`` to pick degraded vs strict behavior
        # and must not flip modes once the first record lands.
        return True

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.records)

    def to_dicts(self) -> list[dict]:
        return [d.to_dict() for d in self.records]
