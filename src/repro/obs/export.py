"""Structured JSONL trace export, loading and cross-process merging.

A trace file is newline-delimited JSON. Every line carries a ``type``:

- ``meta`` — one per contributing process: schema tag, pid, wall-clock
  epoch at export time.
- ``span`` — one completed span (see
  :meth:`repro.obs.recorder.SpanRecord.to_doc`), tagged with the pid
  that recorded it.
- ``counter`` — one named counter total for one process
  (``{"type": "counter", "name": ..., "value": ..., "pid": ...}``).

Multi-process evaluation writes one part file per worker (appended to
after every job, so a killed worker loses at most its in-flight job's
spans) and the parent merges the parts with :func:`merge_traces`:
span lines are concatenated, counter lines are summed by name across
processes. Loading is tolerant — a torn final line from a terminated
worker is skipped, never fatal.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

TRACE_SCHEMA = "obs-trace/v1"


@dataclass
class Trace:
    """One parsed trace: span dicts plus cross-process counter sums."""

    metas: list[dict] = field(default_factory=list)
    spans: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)

    def span_totals(self) -> dict[str, float]:
        """Total duration per span name, across all processes."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span["name"]] = (
                totals.get(span["name"], 0.0) + span["dur"])
        return totals

    def children(self, span_id: int, pid: int) -> list[dict]:
        return [s for s in self.spans
                if s["parent"] == span_id and s.get("pid") == pid]


def _meta_line(pid: int) -> dict:
    return {
        "type": "meta",
        "schema": TRACE_SCHEMA,
        "pid": pid,
        "unix_time": time.time(),
    }


def _payload_lines(payload: dict, pid: int) -> list[dict]:
    lines = []
    for span in payload.get("spans", ()):
        lines.append({**span, "pid": pid})
    for name, value in sorted(payload.get("counters", {}).items()):
        lines.append(
            {"type": "counter", "name": name, "value": value, "pid": pid})
    return lines


def write_trace(
    path: str | Path, payload: dict, *, pid: int | None = None
) -> None:
    """Write one recorder payload (``recorder.drain()``) as a trace file."""
    pid = os.getpid() if pid is None else pid
    with open(path, "w", encoding="utf-8") as f:
        for doc in [_meta_line(pid)] + _payload_lines(payload, pid):
            f.write(json.dumps(doc, sort_keys=True) + "\n")


def append_payload(
    path: str | Path, payload: dict, *, pid: int | None = None
) -> None:
    """Append one payload to a per-process part file (created on first
    use with its ``meta`` line)."""
    if not payload.get("spans") and not payload.get("counters"):
        return
    pid = os.getpid() if pid is None else pid
    path = Path(path)
    fresh = not path.exists()
    with open(path, "a", encoding="utf-8") as f:
        docs = _payload_lines(payload, pid)
        if fresh:
            docs = [_meta_line(pid)] + docs
        for doc in docs:
            f.write(json.dumps(doc, sort_keys=True) + "\n")


def read_trace(path: str | Path) -> Trace:
    """Parse a trace file; malformed lines (torn writes) are skipped."""
    trace = Trace()
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return trace
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError:
            continue  # torn final line of a killed worker
        if not isinstance(doc, dict):
            continue
        kind = doc.get("type")
        if kind == "meta":
            trace.metas.append(doc)
        elif kind == "span":
            trace.spans.append(doc)
        elif kind == "counter":
            name = doc.get("name")
            if isinstance(name, str):
                trace.counters[name] = (
                    trace.counters.get(name, 0) + doc.get("value", 0))
    return trace


def merge_traces(out_path: str | Path, part_paths) -> Trace:
    """Merge per-process part files into one trace file.

    Span and meta lines are concatenated; counters are summed by name
    across processes and re-emitted as single aggregate lines (tagged
    ``pid: 0``). Returns the merged trace.
    """
    merged = Trace()
    for part in part_paths:
        trace = read_trace(part)
        merged.metas.extend(trace.metas)
        merged.spans.extend(trace.spans)
        for name, value in trace.counters.items():
            merged.counters[name] = merged.counters.get(name, 0) + value
    with open(out_path, "w", encoding="utf-8") as f:
        head = {
            "type": "meta",
            "schema": TRACE_SCHEMA,
            "pid": os.getpid(),
            "unix_time": time.time(),
            "merged_parts": len(merged.metas),
        }
        f.write(json.dumps(head, sort_keys=True) + "\n")
        for doc in merged.metas:
            f.write(json.dumps(doc, sort_keys=True) + "\n")
        for doc in merged.spans:
            f.write(json.dumps(doc, sort_keys=True) + "\n")
        for name in sorted(merged.counters):
            f.write(json.dumps(
                {"type": "counter", "name": name,
                 "value": merged.counters[name], "pid": 0},
                sort_keys=True) + "\n")
    return merged
