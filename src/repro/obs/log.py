"""Counter-backed service logging: every warning is also a metric.

Long-lived processes (``funseeker serve``, the supervisor) must not
report operational anomalies with bare ``print(file=sys.stderr)``
calls: stderr scrolls away, but an operator watching ``/v1/metrics``
needs the event to be countable. :func:`warn` couples the two — one
stderr line *and* one obs counter bump per call. :func:`warn_once`
additionally deduplicates the stderr line per counter name (the
counter still increments on every call, so the metric keeps counting
while the log stays quiet).

The helpers never raise: a broken stderr (closed pipe, full disk) must
not take the service down with it.
"""

from __future__ import annotations

import sys
import threading

from repro import obs

_lock = threading.Lock()
_emitted: set[str] = set()


def warn(counter: str, message: str) -> None:
    """Bump ``counter`` and write one ``warning:`` line to stderr."""
    obs.add(counter, 1)
    try:
        print(f"warning: {message}", file=sys.stderr, flush=True)
    except (OSError, ValueError):
        pass


def warn_once(counter: str, message: str) -> None:
    """Like :func:`warn`, but the stderr line fires once per counter.

    The counter increments on *every* call — only the log line is
    deduplicated, keyed by the counter name (not the message text, so
    a per-item message does not defeat the dedup).
    """
    obs.add(counter, 1)
    with _lock:
        if counter in _emitted:
            return
        _emitted.add(counter)
    try:
        print(f"warning: {message}", file=sys.stderr, flush=True)
    except (OSError, ValueError):
        pass


def reset_warn_once() -> None:
    """Forget which warn-once lines were emitted (test isolation)."""
    with _lock:
        _emitted.clear()
