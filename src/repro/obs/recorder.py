"""Span/counter recorders — the core of the observability subsystem.

Two recorder implementations share one duck-typed interface:

- :class:`NullRecorder` — the module default. Every operation is a
  no-op; ``span()`` returns a single preallocated null context manager,
  so the disabled path costs one attribute lookup plus one call and
  allocates nothing. Hot loops never branch on "is tracing on": they
  accumulate locally and report once per region through ``add()``.
- :class:`TraceRecorder` — hierarchical timing spans (a stack of open
  spans; closing records duration, parent and depth), named counters,
  and exception-aware unwinding (a span closed by an exception records
  the exception type and still pops cleanly).

Recorders are per-process. Worker processes install their own (see
:mod:`repro.eval.parallel`) and the parent merges the exported traces;
counters are summed across processes at merge time.
"""

from __future__ import annotations

import time


class SpanRecord:
    """One completed (or still-open) span — and its own context manager.

    Record and guard are fused into a single slotted object so a traced
    span costs one allocation (the traced-sweep overhead bound in
    ``docs/performance.md`` depends on this). ``attrs`` is ``None``
    until the first attribute lands, which keeps attribute-free spans
    dict-free.
    """

    __slots__ = ("_recorder", "id", "parent", "name", "depth", "start",
                 "dur", "attrs", "error")

    def __init__(self, id: int, parent: int, name: str, depth: int,
                 start: float, dur: float = 0.0, attrs: dict | None = None,
                 error: str | None = None, recorder=None) -> None:
        self._recorder = recorder
        self.id = id
        self.parent = parent  # 0 = top level
        self.name = name
        self.depth = depth
        self.start = start  # perf_counter seconds
        self.dur = dur
        self.attrs = attrs
        self.error = error

    @property
    def record(self) -> "SpanRecord":
        """The underlying record (self — kept for the old two-object API)."""
        return self

    def set(self, **attrs) -> "SpanRecord":
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanRecord":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._recorder._close(self, exc_type)
        return False  # never swallow the exception

    def to_doc(self) -> dict:
        doc = {
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "depth": self.depth,
            "start": round(self.start, 9),
            "dur": round(self.dur, 9),
        }
        if self.attrs:
            doc["attrs"] = self.attrs
        if self.error is not None:
            doc["error"] = self.error
        return doc


class _NullSpan:
    """Reusable no-op context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled-path recorder: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, value: float = 1) -> None:
        pass

    def mark(self) -> int:
        return 0

    def phase_totals(self, mark: int = 0) -> dict[str, float]:
        return {}

    def drain(self) -> dict:
        return {"spans": [], "counters": {}}


class CounterRecorder(NullRecorder):
    """Counters without spans — the long-lived-server recorder.

    A service process wants live counters for its ``/v1/metrics``
    endpoint but must not accumulate a span list for weeks (a
    :class:`TraceRecorder` grows without bound until drained).
    ``enabled`` stays ``False`` so span-gated logic — per-record
    ``phase_seconds``, per-job trace flushes — stays off and ``span()``
    keeps handing out the preallocated null guard.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}

    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def snapshot(self) -> dict[str, float]:
        """A point-in-time copy of the counters (does not reset)."""
        return dict(self.counters)

    def drain(self) -> dict:
        payload = {"spans": [], "counters": dict(self.counters)}
        self.counters = {}
        return payload


class TraceRecorder:
    """Collects a span tree and named counters for one process."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []  # completed, in close order
        self.counters: dict[str, float] = {}
        self._stack: list[SpanRecord] = []
        self._next_id = 1
        # Span names come from a small fixed vocabulary repeated across
        # thousands of spans; interning keeps one str object per name.
        self._names: dict[str, str] = {}

    # -- spans --------------------------------------------------------------

    def span(self, name: str, **attrs) -> SpanRecord:
        stack = self._stack
        record = SpanRecord(
            id=self._next_id,
            parent=stack[-1].id if stack else 0,
            name=self._names.setdefault(name, name),
            depth=len(stack),
            start=time.perf_counter(),
            attrs=attrs or None,
            recorder=self,
        )
        self._next_id += 1
        stack.append(record)
        return record

    def _close(self, record: SpanRecord, exc_type) -> None:
        record.dur = time.perf_counter() - record.start
        if exc_type is not None:
            record.error = exc_type.__name__
        # Pop up to and including `record`. An abandoned child (e.g. a
        # generator span never exhausted) is closed here with whatever
        # it accumulated, so an exception unwinding through nested
        # spans leaves the stack consistent.
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
            top.dur = time.perf_counter() - top.start
            top.error = top.error or "AbandonedSpan"
            self.spans.append(top)
        self.spans.append(record)

    # -- counters -----------------------------------------------------------

    def add(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    # -- aggregation --------------------------------------------------------

    def mark(self) -> int:
        """A position in the completed-span log, for windowed totals."""
        return len(self.spans)

    def phase_totals(self, mark: int = 0) -> dict[str, float]:
        """Total duration per span name, over spans closed since ``mark``."""
        totals: dict[str, float] = {}
        for span in self.spans[mark:]:
            totals[span.name] = totals.get(span.name, 0.0) + span.dur
        return totals

    def drain(self) -> dict:
        """Return and reset the accumulated spans/counters.

        Open spans stay on the stack (they belong to a later drain);
        span ids keep incrementing so drained batches never collide.
        """
        payload = {
            "spans": [s.to_doc() for s in self.spans],
            "counters": dict(self.counters),
        }
        self.spans = []
        self.counters = {}
        return payload
