"""Lightweight, zero-dependency pipeline observability.

Hierarchical timing spans, named counters, and a JSONL trace exporter,
threaded through the analysis pipeline (parse → sweep → filter →
tailcall → score) and both evaluation runners. Disabled by default:
the module-level recorder is a :class:`~repro.obs.recorder.NullRecorder`
whose operations are no-ops, so instrumented code pays one attribute
call per region — never a conditional in a hot loop (hot loops
accumulate locally and report once via :func:`add`).

Usage::

    from repro import obs

    with obs.span("sweep", section=".text"):
        ...
        obs.add("sweep.insns", count)

    recorder = obs.set_recorder(obs.TraceRecorder())   # enable
    ...pipeline...
    totals = recorder.phase_totals()                   # name -> seconds
    obs.set_recorder(None)                             # back to no-op

The span taxonomy, counter names and trace schema are documented in
``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.recorder import (
    CounterRecorder,
    NullRecorder,
    SpanRecord,
    TraceRecorder,
)
from repro.obs.export import (
    TRACE_SCHEMA,
    Trace,
    append_payload,
    merge_traces,
    read_trace,
    write_trace,
)

_NULL = NullRecorder()
_recorder: NullRecorder | TraceRecorder = _NULL


def recorder() -> NullRecorder | TraceRecorder:
    """The process's active recorder (never ``None``)."""
    return _recorder


def set_recorder(
    rec: TraceRecorder | NullRecorder | None,
) -> NullRecorder | TraceRecorder:
    """Install a recorder (``None`` restores the no-op default)."""
    global _recorder
    _recorder = _NULL if rec is None else rec
    return _recorder


def enabled() -> bool:
    return _recorder.enabled


def span(name: str, **attrs):
    """Open a timing span on the active recorder (context manager)."""
    return _recorder.span(name, **attrs)


def add(name: str, value: float = 1) -> None:
    """Bump a named counter on the active recorder."""
    _recorder.add(name, value)


def mark() -> int:
    """Snapshot the completed-span log position (0 when disabled)."""
    return _recorder.mark()


def phase_totals(mark: int = 0) -> dict[str, float]:
    """Per-span-name duration totals since ``mark`` ({} when disabled)."""
    return _recorder.phase_totals(mark)


__all__ = [
    "TRACE_SCHEMA",
    "CounterRecorder",
    "NullRecorder",
    "SpanRecord",
    "Trace",
    "TraceRecorder",
    "add",
    "append_payload",
    "enabled",
    "mark",
    "merge_traces",
    "phase_totals",
    "read_trace",
    "recorder",
    "set_recorder",
    "span",
    "write_trace",
]
