"""Command-line interface.

::

    funseeker identify <binary> [--config N] [--robust]
    funseeker compare <binary>            # all detectors side by side
    funseeker disasm <binary>             # annotated listing
    funseeker cfg <binary>                # basic blocks + call graph
    funseeker report <binary>             # JSON analysis + IBT audit
    funseeker table1|table2|table3|figure3|errors|all [--scale S]
    funseeker evaluate [--tools ...] [--format json|csv] [--output F]
                       [--timeout S] [--retries N] [--fail-fast]
                       [--cache-dir D] [--trace PATH]
                       [--run-dir D | --resume D] [--retry-backoff S]
                       [--breaker-threshold N] [--max-rss-mb M]
                       [--fault-plan PLAN] [--quarantine D]
    funseeker scan <root>... [--run-dir D | --resume D]
                   [--tools ...] [--include G] [--exclude G]
                   [--workers N] [--timeout S] [--max-rss-mb M]
                   [--limit N] [--min-size B] [--max-size B]
                   [--format json|table] [--fault-plan PLAN]
    funseeker quarantine list|replay --dir D  # captured failing inputs
    funseeker chaos [--scale S] [--seed N] [--ingest|--service]
    funseeker serve --run-dir D [--host H] [--port P] [--cache-dir D]
                    [--tools ...] [--queue-size N] [--workers N]
                    [--rate R] [--burst B] [--timeout S]
                    [--max-body-mb M]     # analysis job API
    funseeker profile <binary> [--tools ...] [--trace PATH] [--json]
    funseeker cache stats|clear [--cache-dir D]  # on-disk artifact cache
    funseeker fuzz [--budget N] [--seed S]  # fault-injection harness
    funseeker dataset <dir> [--scale S]   # persist the corpus
    funseeker corpus-info [--scale S]     # §III-A dataset account
    funseeker bti-demo                    # ARM BTI extension demo

Also invocable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import ALL_DETECTORS
from repro.core.funseeker import Config, FunSeeker
from repro.elf.parser import ELFFile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="funseeker",
        description="FunSeeker reproduction (DSN 2022): CET-aware "
                    "function identification and evaluation harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_id = sub.add_parser("identify", help="identify functions in a binary")
    p_id.add_argument("binary")
    p_id.add_argument("--config", type=int, default=4, choices=[1, 2, 3, 4],
                      help="FunSeeker configuration (Table II), default 4")
    p_id.add_argument("--robust", action="store_true",
                      help="use the superset-validated front end "
                           "(tolerates data embedded in .text)")

    p_cfg = sub.add_parser(
        "cfg", help="recover per-function CFGs and call-graph stats")
    p_cfg.add_argument("binary")

    p_dis = sub.add_parser(
        "disasm", help="linear-sweep disassembly listing of .text")
    p_dis.add_argument("binary")
    p_dis.add_argument("--limit", type=int, default=80,
                       help="max lines to print (default 80; 0 = all)")

    p_cmp = sub.add_parser("compare", help="run all detectors on a binary")
    p_cmp.add_argument("binary")

    p_rep = sub.add_parser(
        "report", help="machine-readable JSON analysis of one binary")
    p_rep.add_argument("binary")

    for name in ("table1", "table2", "table3", "figure3", "errors",
                 "all"):
        p_tab = sub.add_parser(
            name, help=f"regenerate the paper's {name} on a synthetic corpus"
        )
        p_tab.add_argument("--scale", default="tiny",
                           choices=["tiny", "small", "full"])
        p_tab.add_argument("--seed", type=int, default=2022)
        p_tab.add_argument("--cache-dir", default=None,
                           help="content-addressed analysis cache "
                                "directory (default: off, or "
                                "$REPRO_CACHE_DIR)")

    sub.add_parser("bti-demo", help="ARM BTI extension demonstration (§VI)")

    p_ds = sub.add_parser(
        "dataset", help="generate and save the benchmark dataset to disk")
    p_ds.add_argument("directory")
    p_ds.add_argument("--scale", default="tiny",
                      choices=["tiny", "small", "full"])
    p_ds.add_argument("--seed", type=int, default=2022)

    p_info = sub.add_parser(
        "corpus-info", help="summarize the synthetic corpus composition")
    p_info.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "full"])
    p_info.add_argument("--seed", type=int, default=2022)

    p_ev = sub.add_parser(
        "evaluate",
        help="run detectors over the corpus and export raw results")
    p_ev.add_argument("--scale", default="tiny",
                      choices=["tiny", "small", "full"])
    p_ev.add_argument("--seed", type=int, default=2022)
    p_ev.add_argument("--tools", default="funseeker,ida,ghidra,fetch",
                      help="comma-separated detector names")
    p_ev.add_argument("--format", default="json",
                      choices=["json", "csv"])
    p_ev.add_argument("--workers", type=int, default=None,
                      help="process-pool size (default: CPU count)")
    p_ev.add_argument("--timeout", type=float, default=None,
                      help="wall-clock seconds per (binary, tool) cell")
    p_ev.add_argument("--retries", type=int, default=0,
                      help="extra attempts for a raising cell")
    p_ev.add_argument("--fail-fast", action="store_true",
                      help="abort the sweep on the first failed cell "
                           "(default: keep going and report failures)")
    p_ev.add_argument("--output", default="-",
                      help="output path, '-' for stdout")
    p_ev.add_argument("--cache-dir", default=None,
                      help="content-addressed analysis cache directory "
                           "(default: off, or $REPRO_CACHE_DIR)")
    p_ev.add_argument("--trace", default=None,
                      help="write a JSONL observability trace (spans + "
                           "counters, merged across workers) to PATH")
    p_ev.add_argument("--run-dir", default=None,
                      help="journal every decided cell into this fresh "
                           "run directory (crash-safe, resumable)")
    p_ev.add_argument("--resume", default=None, metavar="RUN_DIR",
                      help="resume a journaled run: skip completed "
                           "cells, retry journaled failures, refuse a "
                           "mismatched manifest")
    p_ev.add_argument("--retry-backoff", type=float, default=0.0,
                      help="base seconds for exponential backoff "
                           "between retry attempts (default 0: none)")
    p_ev.add_argument("--breaker-threshold", type=int, default=0,
                      help="open a per-tool circuit after N consecutive "
                           "detect failures (default 0: breaker off)")
    p_ev.add_argument("--breaker-cooldown", type=int, default=10,
                      help="skipped cells before a half-open probe "
                           "(default 10)")
    p_ev.add_argument("--max-rss-mb", type=int, default=None,
                      help="address-space ceiling per worker, MiB "
                           "(overruns become MemoryError failures)")
    p_ev.add_argument("--fault-plan", default=None,
                      help="inject deterministic faults, e.g. "
                           "'io@cache.get#3,kill@cell.execute#5' "
                           "(also $REPRO_FAULT_PLAN)")
    p_ev.add_argument("--quarantine", default=None, metavar="DIR",
                      help="capture failing inputs (stripped image + "
                           "failure metadata) into DIR for replay")

    p_sc = sub.add_parser(
        "scan",
        help="fleet-scan real-world binaries under directory roots: "
             "triage, degradation-ladder analysis, crash-safe journal, "
             "CET adoption + tool-agreement fleet report")
    p_sc.add_argument("roots", nargs="*",
                      help="directories (or files) to scan; omit when "
                           "resuming (the journal remembers them)")
    p_sc.add_argument("--run-dir", default=None,
                      help="journal every decision into this fresh run "
                           "directory (crash-safe, resumable; default: "
                           "a temp dir discarded after the report)")
    p_sc.add_argument("--resume", default=None, metavar="RUN_DIR",
                      help="resume a journaled scan: keep decided "
                           "paths, retry journaled failures, refuse a "
                           "mismatched manifest")
    p_sc.add_argument("--tools", default=None,
                      help="comma-separated detector names (default "
                           "funseeker,naive-endbr)")
    p_sc.add_argument("--include", action="append", default=[],
                      metavar="GLOB",
                      help="only scan entries matching this fnmatch "
                           "glob (repeatable; name or relative path)")
    p_sc.add_argument("--exclude", action="append", default=[],
                      metavar="GLOB",
                      help="skip entries matching this glob "
                           "(repeatable; prunes whole directories)")
    p_sc.add_argument("--workers", type=int, default=None,
                      help="process-pool size (default: CPU count; "
                           "1 = in-process)")
    p_sc.add_argument("--timeout", type=float, default=None,
                      help="wall-clock seconds per ladder rung")
    p_sc.add_argument("--max-rss-mb", type=int, default=None,
                      help="address-space ceiling per worker, MiB")
    p_sc.add_argument("--limit", type=int, default=None,
                      help="stop after admitting N binaries")
    p_sc.add_argument("--min-size", type=int, default=None,
                      help="admission policy: smallest file to analyze")
    p_sc.add_argument("--max-size", type=int, default=None,
                      help="admission policy: largest file to analyze")
    p_sc.add_argument("--no-follow-symlinks", action="store_true",
                      help="report symlinks as skips instead of "
                           "resolving them")
    p_sc.add_argument("--format", default="table",
                      choices=["table", "json"])
    p_sc.add_argument("--output", default="-",
                      help="report path, '-' for stdout")
    p_sc.add_argument("--breaker-threshold", type=int, default=5,
                      help="open a directory's circuit after N "
                           "consecutive analysis losses (default 5)")
    p_sc.add_argument("--fault-plan", default=None,
                      help="inject deterministic faults, e.g. "
                           "'kill@ingest.analyze#3' "
                           "(also $REPRO_FAULT_PLAN)")
    p_sc.add_argument("--no-quarantine", action="store_true",
                      help="do not capture quarantined binaries into "
                           "the run directory")

    p_pf = sub.add_parser(
        "profile",
        help="per-phase timing and counter profile of one binary")
    p_pf.add_argument("binary")
    p_pf.add_argument("--tools", default="funseeker",
                      help="comma-separated detector names "
                           "(default funseeker)")
    p_pf.add_argument("--trace", default=None,
                      help="write the JSONL observability trace to PATH")
    p_pf.add_argument("--json", action="store_true",
                      help="machine-readable summary instead of a table")

    p_ca = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk analysis-artifact cache")
    p_ca.add_argument("action", choices=["stats", "clear"])
    p_ca.add_argument("--cache-dir", default=".repro-cache",
                      help="cache directory (default .repro-cache)")

    p_fz = sub.add_parser(
        "fuzz",
        help="fault-injection harness: mutate synthesized ELFs and "
             "assert no uncaught exception / hang / silent degradation")
    p_fz.add_argument("--budget", type=int, default=500,
                      help="number of mutants (default 500)")
    p_fz.add_argument("--seed", type=int, default=2022)
    p_fz.add_argument("--families", default=None,
                      help="comma-separated mutator families "
                           "(default: all)")
    p_fz.add_argument("--timeout", type=float, default=None,
                      help="wall-clock seconds per pipeline run "
                           "(default 5)")

    p_qr = sub.add_parser(
        "quarantine",
        help="inspect or replay inputs captured from failing cells")
    p_qr.add_argument("action", choices=["list", "replay"])
    p_qr.add_argument("--dir", dest="quarantine_dir", required=True,
                      help="quarantine directory (evaluate --quarantine)")
    p_qr.add_argument("--sha", default=None,
                      help="only the entry whose sha256 starts with this")
    p_qr.add_argument("--timeout", type=float, default=30.0,
                      help="watchdog seconds per replayed cell "
                           "(default 30)")

    p_ch = sub.add_parser(
        "chaos",
        help="crash-safety acceptance: run seeded fault scenarios "
             "(worker kill, torn journal, corrupted cache, disk full, "
             "cell hang) and assert every run resumes to the "
             "fault-free report")
    p_ch.add_argument("--scale", default="tiny",
                      choices=["tiny", "small", "full"])
    p_ch.add_argument("--seed", type=int, default=2022)
    p_ch.add_argument("--tools", default="funseeker,fetch",
                      help="comma-separated detector names "
                           "(default funseeker,fetch)")
    p_ch.add_argument("--limit", type=int, default=6,
                      help="corpus entries to exercise (default 6; "
                           "0 = the whole corpus)")
    p_ch.add_argument("--work-dir", default=None,
                      help="keep run directories here for post-mortem "
                           "(default: a temp dir, removed on success)")
    p_ch.add_argument("--ingest", action="store_true",
                      help="run the fleet-scan ingest scenarios "
                           "(worker kill mid-ladder, triage I/O fault) "
                           "over a hostile fixture tree instead of the "
                           "evaluation scenarios")
    p_ch.add_argument("--service", action="store_true",
                      help="run the analysis-service scenarios: SIGKILL "
                           "restart-resume, supervised hang backstop, "
                           "poison-job quarantine, and disk-full "
                           "read-only degradation + recovery")

    p_sv = sub.add_parser(
        "serve",
        help="run the analysis job API: POST binaries, poll jobs, "
             "fetch per-tool entry reports with provenance receipts")
    p_sv.add_argument("--run-dir", required=True,
                      help="journal + blob directory; restarting on the "
                           "same directory resumes in-flight jobs")
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=0,
                      help="TCP port (default 0 = OS-assigned; the "
                           "bound address is printed and written to "
                           "address.json in the run dir)")
    p_sv.add_argument("--cache-dir", default=None,
                      help="root of per-tenant cache namespaces "
                           "(default: the process default cache)")
    p_sv.add_argument("--tools", default="",
                      help="comma-separated default detector set "
                           "(default: all detectors)")
    p_sv.add_argument("--queue-size", type=int, default=64,
                      help="bounded job queue depth (default 64); a "
                           "full queue answers 429 + Retry-After")
    p_sv.add_argument("--workers", type=int, default=2,
                      help="analysis executor threads (default 2)")
    p_sv.add_argument("--rate", type=float, default=0.0,
                      help="per-tenant submissions/second "
                           "(default 0 = unlimited)")
    p_sv.add_argument("--burst", type=float, default=None,
                      help="per-tenant burst size (default: --rate)")
    p_sv.add_argument("--timeout", type=float, default=None,
                      help="wall-clock seconds per analysis phase")
    p_sv.add_argument("--retries", type=int, default=0,
                      help="extra attempts for a raising analysis cell")
    p_sv.add_argument("--max-body-mb", type=int, default=64,
                      help="largest accepted submission (default 64)")
    p_sv.add_argument("--isolation", default="process",
                      choices=["process", "thread"],
                      help="run analysis cells in supervised worker "
                           "subprocesses (default) or in-process "
                           "threads; only subprocesses get enforced "
                           "deadlines and crash containment")
    p_sv.add_argument("--backstop", type=float, default=30.0,
                      help="seconds past a job's budget before the "
                           "supervisor kills the worker outright "
                           "(process isolation only; default 30)")
    p_sv.add_argument("--poison-threshold", type=int, default=3,
                      help="worker losses on one job before it is "
                           "poisoned and quarantined (default 3)")
    p_sv.add_argument("--max-rss-mb", type=int, default=None,
                      help="RLIMIT_AS for each worker subprocess in MiB "
                           "(default: unlimited)")
    p_sv.add_argument("--probe-interval", type=float, default=30.0,
                      help="seconds between write probes while the "
                           "service is degraded read-only (default 30)")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        return 0


def _dispatch(args) -> int:
    if args.command == "identify":
        return _cmd_identify(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "cfg":
        return _cmd_cfg(args)
    if args.command == "disasm":
        return _cmd_disasm(args)
    if args.command == "bti-demo":
        return _cmd_bti_demo()
    if args.command == "dataset":
        return _cmd_dataset(args)
    if args.command == "corpus-info":
        return _cmd_corpus_info(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "evaluate":
        return _cmd_evaluate(args)
    if args.command == "scan":
        return _cmd_scan(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "fuzz":
        return _cmd_fuzz(args)
    if args.command == "quarantine":
        return _cmd_quarantine(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return _cmd_table(args)


def _configure_cache(cache_dir: str | None) -> None:
    """Opt the process into the disk cache when a directory is given."""
    if cache_dir:
        from pathlib import Path

        from repro.cache import DiskCache, set_default_cache

        set_default_cache(DiskCache(Path(cache_dir)))


def _cmd_cache(args) -> int:
    import json
    from pathlib import Path

    from repro.cache import DiskCache

    cache = DiskCache(Path(args.cache_dir))
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {args.cache_dir}")
        return 0
    print(json.dumps(cache.census(), indent=1))
    return 0


def _cmd_evaluate(args) -> int:
    import shutil
    import tempfile

    from repro import faults, obs
    from repro.errors import (
        EvaluationAborted,
        JournalError,
        JournalWriteError,
        ManifestCorruptError,
        ManifestMismatchError,
    )
    from repro.eval.breaker import CircuitBreaker
    from repro.eval.export import report_to_csv, report_to_json
    from repro.eval.journal import (
        RunJournal,
        build_manifest,
        check_manifest,
        merge_resumed_report,
        read_journal,
    )
    from repro.eval.parallel import run_evaluation_parallel
    from repro.eval.quarantine import QuarantineStore
    from repro.eval.tables import failure_summary
    from repro.synth.corpus import build_corpus

    if args.run_dir and args.resume:
        print("error: --run-dir starts a fresh journal, --resume "
              "continues one; pass exactly one of them", file=sys.stderr)
        return 2
    tools = [t.strip() for t in args.tools.split(",") if t.strip()]
    _configure_cache(args.cache_dir)
    if args.fault_plan:
        faults.install(args.fault_plan)
    trace_dir = None
    if args.trace:
        # Parent + each worker write JSONL part files here; they are
        # merged into args.trace once the sweep finishes.
        trace_dir = tempfile.mkdtemp(prefix="repro-trace-")
        obs.set_recorder(obs.TraceRecorder())
    print(f"building '{args.scale}' corpus ...", file=sys.stderr)
    corpus = build_corpus(args.scale, seed=args.seed)

    journal = prior = None
    completed = None
    try:
        if args.resume:
            journal = RunJournal.resume(args.resume)
            check_manifest(journal.manifest(), corpus, tools)
            prior = read_journal(args.resume)
            completed = prior.completed
            print(f"resuming {args.resume}: {len(prior.records)} cells "
                  f"journaled, {len(prior.failures)} failures to retry"
                  + (" (torn tail dropped)" if prior.torn_tail else ""),
                  file=sys.stderr)
        elif args.run_dir:
            journal = RunJournal.create(
                args.run_dir,
                build_manifest(corpus, tools, scale=args.scale,
                               seed=args.seed, timeout=args.timeout,
                               retries=args.retries))
    except ManifestMismatchError as exc:
        print(f"refusing to resume: {exc}", file=sys.stderr)
        return 2
    except ManifestCorruptError as exc:
        print(f"cannot resume: {exc}\n"
              f"the run directory is damaged; start over with a fresh "
              f"--run-dir", file=sys.stderr)
        return 3
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    breaker = None
    if args.breaker_threshold > 0:
        breaker = CircuitBreaker(threshold=args.breaker_threshold,
                                 cooldown=args.breaker_cooldown)
    quarantine = (QuarantineStore(args.quarantine)
                  if args.quarantine else None)

    print(f"evaluating {tools} over {len(corpus)} binaries ...",
          file=sys.stderr)
    try:
        report = run_evaluation_parallel(
            corpus, tools,
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            keep_going=not args.fail_fast,
            trace_dir=trace_dir,
            backoff=args.retry_backoff,
            journal=journal,
            completed=completed,
            breaker=breaker,
            quarantine=quarantine,
            max_rss_mb=args.max_rss_mb,
        )
    except EvaluationAborted as exc:
        print(f"aborted (--fail-fast): {exc}", file=sys.stderr)
        return 2
    except JournalWriteError as exc:
        run_dir = args.resume or args.run_dir
        print(f"journal write failed, sweep aborted: {exc}\n"
              f"completed cells are safe; continue with "
              f"--resume {run_dir}", file=sys.stderr)
        return 3
    finally:
        if journal is not None:
            journal.close()
        if args.fault_plan:
            faults.clear()
        if trace_dir is not None:
            _export_eval_trace(args.trace, trace_dir)
            obs.set_recorder(None)
            shutil.rmtree(trace_dir, ignore_errors=True)
    if prior is not None:
        report = merge_resumed_report(corpus, tools, prior, report)
    text = (report_to_json(report) if args.format == "json"
            else report_to_csv(report))
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    if report.failures:
        print(failure_summary(report), file=sys.stderr)
        return 1
    return 0


def _cmd_scan(args) -> int:
    import json
    import shutil
    import tempfile

    from repro import faults
    from repro.errors import (
        JournalError,
        JournalWriteError,
        ManifestCorruptError,
        ManifestMismatchError,
    )
    from repro.eval.breaker import CircuitBreaker
    from repro.ingest import (
        DEFAULT_SCAN_TOOLS,
        AdmissionPolicy,
        build_fleet_report,
        render_fleet_table,
        run_scan,
    )

    if args.run_dir and args.resume:
        print("error: --run-dir starts a fresh journal, --resume "
              "continues one; pass exactly one of them", file=sys.stderr)
        return 2
    if not args.resume and not args.roots:
        print("error: a fresh scan needs at least one root "
              "(or --resume RUN_DIR)", file=sys.stderr)
        return 2
    tools = (None if args.tools is None
             else [t.strip() for t in args.tools.split(",") if t.strip()])
    unknown = [t for t in (tools or DEFAULT_SCAN_TOOLS)
               if t not in ALL_DETECTORS]
    if unknown:
        print(f"error: unknown detectors: {unknown} "
              f"(known: {sorted(ALL_DETECTORS)})", file=sys.stderr)
        return 2
    policy = AdmissionPolicy()
    if args.min_size is not None or args.max_size is not None:
        policy = AdmissionPolicy(
            min_size=(args.min_size if args.min_size is not None
                      else policy.min_size),
            max_size=(args.max_size if args.max_size is not None
                      else policy.max_size))
    if args.fault_plan:
        faults.install(args.fault_plan)

    temp_run = None
    run_dir = args.resume or args.run_dir
    if run_dir is None:
        temp_run = tempfile.mkdtemp(prefix="repro-scan-")
        run_dir = f"{temp_run}/run"
    breaker = None
    if args.breaker_threshold > 0:
        breaker = CircuitBreaker(threshold=args.breaker_threshold)
    try:
        result = run_scan(
            run_dir,
            roots=list(args.roots) or None,
            tools=tools,
            resume=bool(args.resume),
            include=tuple(args.include),
            exclude=tuple(args.exclude),
            policy=policy,
            follow_symlinks=not args.no_follow_symlinks,
            workers=args.workers,
            timeout=args.timeout,
            max_rss_mb=args.max_rss_mb,
            limit=args.limit,
            breaker=breaker,
            quarantine=not args.no_quarantine,
        )
    except ManifestMismatchError as exc:
        print(f"refusing to resume: {exc}", file=sys.stderr)
        return 2
    except ManifestCorruptError as exc:
        print(f"cannot resume: {exc}\n"
              f"the run directory is damaged; start over with a fresh "
              f"--run-dir", file=sys.stderr)
        return 3
    except (JournalError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except JournalWriteError as exc:
        print(f"journal write failed, scan aborted: {exc}\n"
              f"decided paths are safe; continue with "
              f"--resume {run_dir}", file=sys.stderr)
        return 3
    finally:
        if args.fault_plan:
            faults.clear()

    stats = result.stats
    print(f"scanned {stats.walked} entries: {stats.dispatched} analyzed, "
          f"{stats.walk_skips + stats.triaged} triaged out, "
          f"{stats.resumed} already decided, "
          f"{stats.lost_workers} workers lost", file=sys.stderr)
    report = build_fleet_report(result.state, result.manifest)
    text = (json.dumps(report, indent=1, sort_keys=True)
            if args.format == "json" else render_fleet_table(report))
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    if result.state.failures:
        print(f"{len(result.state.failures)} path(s) left retryable "
              f"failure records; re-run with --resume {run_dir} to "
              f"converge", file=sys.stderr)
        if temp_run is not None:
            temp_run = None  # keep the journal: it holds the retries
            print(f"journal kept at {run_dir}", file=sys.stderr)
    if temp_run is not None:
        shutil.rmtree(temp_run, ignore_errors=True)
    return 0


def _export_eval_trace(out_path: str, trace_dir: str) -> None:
    """Flush the parent recorder and merge all part files into one trace."""
    import os
    from pathlib import Path

    from repro import obs

    recorder = obs.recorder()
    if recorder.enabled:
        obs.append_payload(
            Path(trace_dir) / f"worker-{os.getpid()}.jsonl",
            recorder.drain())
    parts = sorted(Path(trace_dir).glob("*.jsonl"))
    trace = obs.merge_traces(out_path, parts)
    print(f"wrote trace {out_path} ({len(trace.spans)} spans, "
          f"{len(trace.counters)} counters, {len(parts)} part files)",
          file=sys.stderr)


def _cmd_quarantine(args) -> int:
    from repro.eval.quarantine import QuarantineStore, replay_entry

    store = QuarantineStore(args.quarantine_dir)
    entries = store.entries()
    if args.sha:
        entries = [e for e in entries if e.sha256.startswith(args.sha)]
    if not entries:
        print(f"no quarantined inputs under {args.quarantine_dir}"
              + (f" matching {args.sha!r}" if args.sha else ""))
        return 0
    if args.action == "list":
        for entry in entries:
            print(f"{entry.short}  {entry.size:8d} bytes  "
                  f"{len(entry.failures)} failure(s)")
            for meta in entry.failures:
                print(f"    {meta['suite']}/{meta['program']} "
                      f"[{meta['tool']}] {meta['phase']}: "
                      f"{meta['error_type']}: {meta['message']}")
        return 0
    still_failing = 0
    for entry in entries:
        for outcome in replay_entry(entry, timeout=args.timeout):
            mark = "FAIL" if outcome.reproduced else "ok  "
            detail = (f"{outcome.error_type}: {outcome.message}"
                      if outcome.reproduced else "no longer fails")
            print(f"[{mark}] {entry.short} [{outcome.tool}] "
                  f"(was {outcome.original_error}) {detail} "
                  f"({outcome.elapsed_seconds:.2f}s)")
            still_failing += outcome.reproduced
    print(f"replayed {len(entries)} input(s): "
          f"{still_failing} still failing")
    return 1 if still_failing else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro import obs
    from repro.errors import ManifestCorruptError, ManifestMismatchError
    from repro.service import AnalysisService, JobManager, TenantRateLimiter

    tools = [t.strip() for t in args.tools.split(",") if t.strip()] or None
    if tools:
        unknown = [t for t in tools if t not in ALL_DETECTORS]
        if unknown:
            print(f"error: unknown detectors: {unknown} "
                  f"(known: {sorted(ALL_DETECTORS)})", file=sys.stderr)
            return 2
    # Counters only: a long-lived server must not accumulate spans.
    obs.set_recorder(obs.CounterRecorder())
    try:
        manager = JobManager(
            args.run_dir,
            tools=tools,
            cache_root=args.cache_dir,
            queue_size=args.queue_size,
            executor_workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            isolation=args.isolation,
            backstop=args.backstop,
            poison_threshold=args.poison_threshold,
            max_rss_mb=args.max_rss_mb,
            probe_interval=args.probe_interval,
        )
    except ManifestCorruptError as exc:
        print(f"cannot serve: {exc}\nthe run directory is damaged; "
              f"start over with a fresh --run-dir", file=sys.stderr)
        return 3
    except ManifestMismatchError as exc:
        print(f"cannot serve: {exc}", file=sys.stderr)
        return 2
    service = AnalysisService(
        manager,
        host=args.host,
        port=args.port,
        limiter=TenantRateLimiter(rate=args.rate, burst=args.burst),
        max_body=args.max_body_mb * 1024 * 1024,
    )
    return asyncio.run(_serve_until_signal(service))


async def _serve_until_signal(service) -> int:
    import asyncio
    import json
    import os
    import signal

    host, port = await service.start()
    manager = service.manager
    address = {"host": host, "port": port, "pid": os.getpid()}
    (manager.run_dir / "address.json").write_text(
        json.dumps(address), encoding="utf-8")
    if manager.resumed:
        print(f"resumed run dir {manager.run_dir}: "
              f"{manager.stats['restored']} completed jobs restored, "
              f"{manager.stats['resumed_jobs']} re-enqueued",
              file=sys.stderr)
    # The machine-readable "I'm up" line: chaos and tests parse it.
    print(f"serving on http://{host}:{port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            pass
    await stop.wait()
    print("shutting down: in-flight jobs stay journaled for the next "
          "server on this run dir", file=sys.stderr)
    await service.stop()
    return 0


def _cmd_chaos(args) -> int:
    import shutil
    import tempfile

    from repro.faults.chaos import run_chaos
    from repro.synth.corpus import build_corpus

    if args.service:
        from repro.service.chaos import run_service_chaos

        work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
        print(f"service chaos: seed {args.seed}, run dirs under "
              f"{work_dir} ...", file=sys.stderr)
        report = run_service_chaos(work_dir, seed=args.seed)
        print(report.render())
        if report.ok and not args.work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)
        elif not report.ok:
            print(f"run directories kept for post-mortem: {work_dir}",
                  file=sys.stderr)
        return 0 if report.ok else 1

    if args.ingest:
        from repro.ingest.chaos import run_ingest_chaos

        work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
        print(f"ingest chaos: seed {args.seed}, run dirs under "
              f"{work_dir} ...", file=sys.stderr)
        report = run_ingest_chaos(work_dir, seed=args.seed)
        print(report.render())
        if report.ok and not args.work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)
        elif not report.ok:
            print(f"run directories kept for post-mortem: {work_dir}",
                  file=sys.stderr)
        return 0 if report.ok else 1

    tools = [t.strip() for t in args.tools.split(",") if t.strip()]
    unknown = [t for t in tools if t not in ALL_DETECTORS]
    if unknown:
        print(f"error: unknown detectors: {unknown} "
              f"(known: {sorted(ALL_DETECTORS)})", file=sys.stderr)
        return 2
    print(f"building '{args.scale}' corpus ...", file=sys.stderr)
    corpus = build_corpus(args.scale, seed=args.seed)
    if args.limit:
        corpus = corpus[: args.limit]
    work_dir = args.work_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    print(f"chaos: {len(corpus)} binaries x {tools}, seed {args.seed}, "
          f"run dirs under {work_dir} ...", file=sys.stderr)
    report = run_chaos(corpus, tools, work_dir, seed=args.seed)
    print(report.render())
    if report.ok and not args.work_dir:
        shutil.rmtree(work_dir, ignore_errors=True)
    elif not report.ok:
        print(f"run directories kept for post-mortem: {work_dir}",
              file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_profile(args) -> int:
    import json
    import time

    from repro import obs

    tools = [t.strip() for t in args.tools.split(",") if t.strip()]
    unknown = [t for t in tools if t not in ALL_DETECTORS]
    if unknown:
        print(f"error: unknown detectors: {unknown} "
              f"(known: {sorted(ALL_DETECTORS)})", file=sys.stderr)
        return 2
    recorder = obs.set_recorder(obs.TraceRecorder())
    try:
        started = time.perf_counter()
        with obs.span("profile", binary=str(args.binary)):
            elf = ELFFile.from_path(args.binary)
            functions = {
                name: len(ALL_DETECTORS[name]().detect(elf).functions)
                for name in tools
            }
        elapsed = time.perf_counter() - started
    finally:
        obs.set_recorder(None)
    phases = recorder.phase_totals()
    counters = dict(recorder.counters)
    spans = list(recorder.spans)
    if args.trace:
        obs.write_trace(args.trace, recorder.drain())
        print(f"wrote trace {args.trace} ({len(spans)} spans)",
              file=sys.stderr)
    if args.json:
        print(json.dumps({
            "binary": str(args.binary),
            "elapsed_seconds": round(elapsed, 6),
            "functions": functions,
            "phases": {k: round(v, 6) for k, v in sorted(phases.items())},
            "counters": counters,
        }, indent=1, sort_keys=True))
        return 0
    print(f"profile of {args.binary} "
          f"({', '.join(f'{t}: {n} functions' for t, n in functions.items())})")
    print(f"\n{'phase':<18s} {'calls':>6s} {'total ms':>10s} {'%':>6s}")
    calls: dict[str, int] = {}
    for span in spans:
        calls[span.name] = calls.get(span.name, 0) + 1
    for name, total in sorted(phases.items(), key=lambda kv: -kv[1]):
        share = 100.0 * total / elapsed if elapsed else 0.0
        print(f"{name:<18s} {calls[name]:6d} {total * 1000:10.3f} "
              f"{share:6.1f}")
    print(f"\n{'wall':<18s} {'':6s} {elapsed * 1000:10.3f} {100.0:6.1f}")
    if counters:
        print("\ncounters:")
        for name in sorted(counters):
            print(f"  {name} = {counters[name]:g}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.fuzz import run_fuzz
    from repro.fuzz.harness import DEFAULT_CASE_TIMEOUT

    families = None
    if args.families:
        families = [f.strip() for f in args.families.split(",")
                    if f.strip()]
    timeout = (args.timeout if args.timeout is not None
               else DEFAULT_CASE_TIMEOUT)
    print(f"fuzzing: {args.budget} mutants, seed {args.seed} ...",
          file=sys.stderr)
    try:
        report = run_fuzz(args.budget, seed=args.seed, families=families,
                          case_timeout=timeout)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    return 0 if report.ok else 1


def _cmd_report(args) -> int:
    import json

    from repro.analysis.ibt_audit import audit_ibt
    from repro.cfg import recover_program_cfg
    from repro.elf.gnuproperty import parse_cet_features

    elf = ELFFile.from_path(args.binary)
    result = FunSeeker(elf).identify()
    program = recover_program_cfg(elf, result.functions)
    audit = audit_ibt(elf)
    features = parse_cet_features(elf)
    boundaries = program.boundaries()
    doc = {
        "binary": str(args.binary),
        "arch": "x86-64" if elf.is64 else "x86",
        "pie": elf.header.is_pie,
        "cet": {"ibt": features.ibt, "shstk": features.shstk},
        "stats": {
            "functions": len(result.functions),
            "instructions": result.insn_count,
            "basic_blocks": program.total_blocks,
            "call_edges": program.call_graph.number_of_edges(),
            "landing_pads": len(result.landing_pads),
            "analysis_seconds": round(result.elapsed_seconds, 4),
        },
        "ibt_audit": {
            "compliant": audit.compliant,
            "candidates": audit.candidate_count,
            "violations": [
                {"target": v.target, "source": v.source.value}
                for v in audit.violations
            ],
        },
        "functions": [
            {
                "entry": entry,
                "end": boundaries.get(entry, entry),
                "blocks": program.functions[entry].block_count
                if entry in program.functions else 0,
            }
            for entry in sorted(result.functions)
        ],
    }
    print(json.dumps(doc, indent=1))
    return 0


def _cmd_dataset(args) -> int:
    from repro.synth.dataset import save_dataset

    manifest = save_dataset(args.directory, scale=args.scale,
                            seed=args.seed)
    total = sum(b["size"] for b in manifest["binaries"])
    print(f"wrote {len(manifest['binaries'])} binaries "
          f"({total / 1e6:.1f} MB) to {args.directory}")
    return 0


def _cmd_corpus_info(args) -> int:
    from repro.analysis.dataset_stats import dataset_stats
    from repro.synth.corpus import iter_corpus

    stats = dataset_stats(iter_corpus(args.scale, args.seed))
    print(f"corpus scale={args.scale!r} seed={args.seed}")
    print(stats.render())
    return 0


def _cmd_identify(args) -> int:
    if args.robust:
        from repro.core.robust import RobustFunSeeker

        seeker = RobustFunSeeker.from_path(args.binary, Config(args.config))
    else:
        seeker = FunSeeker.from_path(args.binary, Config(args.config))
    result = seeker.identify()
    for addr in sorted(result.functions):
        print(f"{addr:#x}")
    print(
        f"# {len(result.functions)} functions "
        f"({len(result.endbr_filtered)} endbr, "
        f"{len(result.call_targets)} call targets, "
        f"{len(result.tail_call_targets)} tail calls) "
        f"in {result.elapsed_seconds * 1000:.1f} ms",
        file=sys.stderr,
    )
    return 0


def _cmd_compare(args) -> int:
    elf = ELFFile.from_path(args.binary)
    print(f"{'tool':14s} {'functions':>9s} {'time':>9s}")
    for name, cls in ALL_DETECTORS.items():
        result = cls().detect(elf)
        print(f"{name:14s} {len(result.functions):9d} "
              f"{result.elapsed_seconds * 1000:7.1f}ms")
    return 0


def _cmd_disasm(args) -> int:
    from repro.x86.format import format_listing

    elf = ELFFile.from_path(args.binary)
    txt = elf.section(".text")
    if txt is None:
        print("no .text section", file=sys.stderr)
        return 1
    symbols = {s.value: s.name for s in elf.symbols()
               if s.is_function and s.is_defined}
    # Functions identified by FunSeeker become listing landmarks even
    # on stripped binaries.
    functions = FunSeeker(elf).identify().functions
    bits = 64 if elf.is64 else 32
    lines = format_listing(txt.data, txt.sh_addr, bits, symbols)
    printed = 0
    for line in lines:
        if line.addr in functions:
            name = symbols.get(line.addr, f"func_{line.addr:x}")
            print(f"\n{line.addr:#010x} <{name}>:")
        print(line.render())
        printed += 1
        if args.limit and printed >= args.limit:
            remaining = len(lines) - printed
            if remaining > 0:
                print(f"... {remaining} more lines (--limit 0 for all)")
            break
    return 0


def _cmd_cfg(args) -> int:
    from repro.cfg import recover_program_cfg

    elf = ELFFile.from_path(args.binary)
    functions = FunSeeker(elf).identify().functions
    program = recover_program_cfg(elf, functions)
    print(f"{len(program.functions)} functions, "
          f"{program.total_blocks} basic blocks, "
          f"{program.total_insns} instructions, "
          f"{program.call_graph.number_of_edges()} call edges")
    for entry in sorted(program.functions)[:20]:
        cfg = program.functions[entry]
        print(f"  {entry:#010x}: {cfg.block_count:4d} blocks "
              f"{len(cfg.edges()):4d} edges  end={cfg.high_addr:#x}")
    if len(program.functions) > 20:
        print(f"  ... {len(program.functions) - 20} more")
    return 0


def _cmd_table(args) -> int:
    from repro.eval import tables
    from repro.synth.corpus import build_corpus

    _configure_cache(args.cache_dir)
    print(f"building '{args.scale}' corpus ...", file=sys.stderr)
    corpus = build_corpus(args.scale, seed=args.seed)
    print(f"{len(corpus)} binaries", file=sys.stderr)
    renderers = {
        "table1": tables.table1,
        "table2": tables.table2,
        "table3": tables.table3,
        "figure3": tables.figure3,
        "errors": tables.error_breakdown,
    }
    chosen = (renderers.values() if args.command == "all"
              else [renderers[args.command]])
    for renderer in chosen:
        text, _results = renderer(corpus)
        print(text)
        print()
    return 0


def _cmd_bti_demo() -> int:
    from repro.arm import (
        generate_bti_program,
        identify_functions_bti,
        link_bti_program,
    )

    funcs = generate_bti_program(150, seed=7)
    binary = link_bti_program(funcs, seed=7)
    elf = ELFFile(binary.data)
    result = identify_functions_bti(elf)
    gt = binary.ground_truth.function_starts
    tp = len(gt & result.functions)
    fp = len(result.functions) - tp
    fn = len(gt) - tp
    print("ARM BTI extension (paper §VI): FunSeeker on AArch64")
    print(f"  functions: {len(gt)}  found: {len(result.functions)}")
    print(f"  precision: {tp / (tp + fp):.3f}  recall: {tp / (tp + fn):.3f}")
    print(f"  BTI markers: {len(result.bti_addrs)}  "
          f"bl targets: {len(result.call_targets)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
