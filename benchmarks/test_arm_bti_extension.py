"""The ARM BTI transfer (paper §VI future work).

Claims asserted: the E ∪ C ∪ J' structure applied to BTI-enabled
AArch64 binaries reaches FunSeeker-grade precision/recall, and BTI
markers alone (the naive policy) under-report exactly like endbr-only
does on x86.
"""

from benchmarks.conftest import publish
from repro.arm import (
    generate_bti_program,
    identify_functions_bti,
    link_bti_program,
)
from repro.elf.parser import ELFFile
from repro.eval.metrics import Confusion, score


def _run():
    pooled = Confusion()
    bti_only = Confusion()
    for seed in range(10):
        funcs = generate_bti_program(150, seed=seed)
        binary = link_bti_program(funcs, seed=seed)
        elf = ELFFile(binary.data)
        result = identify_functions_bti(elf)
        gt = binary.ground_truth.function_starts
        pooled.add(score(gt, result.functions))
        bti_only.add(score(gt, result.bti_addrs))
    return pooled, bti_only


def test_bti_transfer(benchmark, results_dir):
    pooled, bti_only = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "EXTENSION: FunSeeker on BTI-enabled AArch64 (paper §VI)",
        f"  full pipeline P={100 * pooled.precision:6.2f} "
        f"R={100 * pooled.recall:6.2f}",
        f"  BTI-only      P={100 * bti_only.precision:6.2f} "
        f"R={100 * bti_only.recall:6.2f}",
    ]
    publish(results_dir, "arm_bti_extension", "\n".join(lines))

    assert pooled.precision > 0.97
    assert pooled.recall > 0.93
    # BTI markers alone miss the direct-call-only functions, like
    # endbr-only does on x86 (Figure 3's ~11%).
    assert bti_only.recall < pooled.recall - 0.1
