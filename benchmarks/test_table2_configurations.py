"""Regenerate Table II: FunSeeker under its four configurations.

Paper claims reproduced here (structure over absolute values):

- ① (E ∪ C): high recall but precision suffers on the C++ suite
  (landing pads misread as entries);
- ② (E' ∪ C): FILTERENDBR restores >99% precision *without touching
  recall* — the filter removes only non-entries;
- ③ (E' ∪ C ∪ J): best recall, catastrophic precision (paper: 26.3%
  total) — most jump targets are intra-function merges;
- ④ (E' ∪ C ∪ J'): SELECTTAILCALL recovers the precision while
  keeping a recall edge over ②.
"""

from benchmarks.conftest import publish
from repro.eval.tables import table2


def test_table2(benchmark, corpus, results_dir):
    text, report = benchmark.pedantic(
        lambda: table2(corpus), rounds=1, iterations=1
    )
    publish(results_dir, "table2", text)

    pooled = {i: report.filtered(tool=f"cfg{i}").pooled()
              for i in (1, 2, 3, 4)}

    # ② precision restoration, recall preservation.
    assert pooled[2].precision > 0.98
    assert pooled[2].precision >= pooled[1].precision
    assert abs(pooled[2].recall - pooled[1].recall) < 1e-9

    # ① hurts specifically on the C++ suite.
    spec1 = report.filtered(tool="cfg1", suite="spec").pooled()
    core1 = report.filtered(tool="cfg1", suite="coreutils").pooled()
    assert spec1.precision < core1.precision - 0.1

    # ③ precision collapse with peak recall.
    assert pooled[3].precision < 0.5, "paper: 26.3%"
    assert pooled[3].recall >= pooled[2].recall

    # ④ balances: precision back above 98%, recall above ②.
    assert pooled[4].precision > 0.98
    assert pooled[4].recall > pooled[2].recall
    assert pooled[4].recall > 0.98

    # Clang rows reach 100% precision under ② (paper Table II).
    clang2 = report.filtered(tool="cfg2", compiler="clang").pooled()
    assert clang2.precision > 0.999
