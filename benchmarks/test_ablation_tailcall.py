"""Ablation: SELECTTAILCALL's two conditions (paper §IV-D).

The paper attributes a +73.18-point precision gain to tail-call
selection over raw jump inclusion. This bench decomposes the gain:

- ``none``  — config ③: every escaping jump target is a function;
- ``cond1`` — only the beyond-the-current-function test (Qiao et al.);
- ``cond2`` — only the multi-function-reference test (FETCH-inspired);
- ``both``  — the shipped SELECTTAILCALL.

Claims asserted: each single condition already recovers much of the
precision; the conjunction is the best; the recall cost of selection
is small.
"""

from bisect import bisect_right

from benchmarks.conftest import publish
from repro.core.disassemble import disassemble
from repro.core.filter_endbr import filter_endbr
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.eval.metrics import Confusion, score

VARIANTS = ("none", "cond1", "cond2", "both")


def _select(variant, jump_sites, call_sites, entries, text_start, text_end):
    starts = sorted(entries)

    def owner(addr):
        idx = bisect_right(starts, addr) - 1
        return starts[idx] if idx >= 0 else text_start

    def next_boundary(addr):
        idx = bisect_right(starts, addr)
        return starts[idx] if idx < len(starts) else text_end

    ref_owners = {}
    for site in list(jump_sites) + list(call_sites):
        ref_owners.setdefault(site.target, set()).add(owner(site.addr))

    selected = set()
    for site in jump_sites:
        target = site.target
        if target in entries:
            continue
        current = owner(site.addr)
        escapes = not (current <= target < next_boundary(site.addr))
        owners = ref_owners.get(target, set())
        multi = len(owners) >= 2 and owners != {current}
        accept = {
            "none": True,
            "cond1": escapes,
            "cond2": multi,
            "both": escapes and multi,
        }[variant]
        if accept:
            selected.add(target)
    return selected


def _run_variants(corpus):
    pooled = {v: Confusion() for v in VARIANTS}
    for entry in corpus:
        elf = ELFFile(entry.stripped)
        txt = elf.section(".text")
        if txt is None or not txt.data:
            continue
        bits = 64 if elf.is64 else 32
        seeker = FunSeeker(elf)
        pads = seeker._parse_exception_info()
        from repro.elf.plt import build_plt_map

        sweep = disassemble(txt.data, txt.sh_addr, bits)
        base = filter_endbr(sweep, build_plt_map(elf), pads) \
            | sweep.call_targets
        gt = entry.binary.ground_truth.function_starts
        for variant in VARIANTS:
            selected = _select(
                variant, sweep.jump_sites, sweep.call_sites, base,
                sweep.text_start, sweep.text_end,
            )
            pooled[variant].add(score(gt, base | selected))
    return pooled


def test_tailcall_condition_ablation(benchmark, corpus, results_dir):
    pooled = benchmark.pedantic(
        lambda: _run_variants(corpus), rounds=1, iterations=1
    )
    lines = ["ABLATION: tail-call selection conditions (paper §IV-D)"]
    for variant in VARIANTS:
        conf = pooled[variant]
        lines.append(f"  {variant:6s} P={100 * conf.precision:6.2f} "
                     f"R={100 * conf.recall:6.2f}")
    gain = 100 * (pooled["both"].precision - pooled["none"].precision)
    lines.append(f"  precision gain of SELECTTAILCALL over raw J: "
                 f"{gain:.2f} points (paper: +73.18)")
    publish(results_dir, "ablation_tailcall", "\n".join(lines))

    # Raw inclusion is catastrophic; the conjunction fixes it.
    assert pooled["none"].precision < 0.5
    assert pooled["both"].precision > 0.98
    assert gain > 40, "paper reports a ~73-point gain"
    # Each condition helps on its own; conjunction >= each alone.
    assert pooled["cond1"].precision > pooled["none"].precision
    assert pooled["cond2"].precision > pooled["none"].precision
    assert pooled["both"].precision >= pooled["cond1"].precision - 1e-9
    assert pooled["both"].precision >= pooled["cond2"].precision - 1e-9
    # Selection costs little recall relative to taking all jumps.
    assert pooled["both"].recall > pooled["none"].recall - 0.01
