"""Regenerate Figure 3: the function syntactic-property Venn diagram.

Paper claims reproduced here:

- ~89.3% of functions start with an end-branch (we assert a band);
- ~10% are DirCallTarget-only statics;
- at least one of the three properties holds for ~all functions —
  the residual no-property functions are dead code;
- the two jump-related slivers exist but are small.
"""

from benchmarks.conftest import publish
from repro.analysis.function_props import CALL, ENDBR, JMP
from repro.eval.tables import figure3


def test_figure3(benchmark, corpus, results_dir):
    text, venn = benchmark.pedantic(
        lambda: figure3(corpus), rounds=1, iterations=1
    )
    publish(results_dir, "figure3", text)

    total = venn.total
    assert total > 500

    endbr_frac = venn.with_property(ENDBR) / total
    assert 0.80 < endbr_frac < 0.95, "paper: 89.3% EndBrAtHead"

    call_only = venn.fraction(frozenset({CALL}))
    assert 0.05 < call_only < 0.20, "paper: 10.01% DirCall-only"

    covered = venn.any_property() / total
    assert covered > 0.97, "paper: 99.99% hold at least one property"

    jmp_only = venn.fraction(frozenset({JMP}))
    assert jmp_only < 0.05, "paper: 0.44% DirJmp-only"

    none_frac = venn.fraction(frozenset())
    assert none_frac < 0.03, "paper: 0.01% with no property (dead code)"
