"""Microbenchmarks: decoder and detector throughput.

These are conventional pytest-benchmark measurements (multiple rounds)
of the hot paths behind Table III's timing column: the linear-sweep
decoder, the full FunSeeker pipeline, and the FETCH-like pipeline on
the same binary.
"""

import pytest

from repro.baselines import (
    FetchLikeDetector,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
)
from repro.core.disassemble import disassemble
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program


@pytest.fixture(scope="module")
def big_binary():
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("bench", 300, profile, seed=5, cxx=True)
    return link_program(spec, profile)


@pytest.fixture(scope="module")
def big_elf(big_binary):
    return ELFFile(big_binary.data)


def test_linear_sweep_throughput(benchmark, big_elf):
    txt = big_elf.section(".text")
    result = benchmark(disassemble, txt.data, txt.sh_addr, 64)
    assert result.insn_count > 10000
    benchmark.extra_info["bytes"] = len(txt.data)
    benchmark.extra_info["insns"] = result.insn_count


def test_funseeker_throughput(benchmark, big_elf):
    detector = FunSeekerDetector()
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_fetch_throughput(benchmark, big_elf):
    detector = FetchLikeDetector()
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_ghidra_throughput(benchmark, big_elf):
    detector = GhidraLikeDetector()
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_ida_throughput(benchmark, big_elf):
    detector = IdaLikeDetector()
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_robust_sweep_throughput(benchmark, big_elf):
    """The superset-validated front end pays a constant-factor cost
    over plain sweep (full-offset viability pass)."""
    from repro.core.robust import disassemble_robust

    txt = big_elf.section(".text")
    result = benchmark(disassemble_robust, txt.data, txt.sh_addr, 64)
    assert result.insn_count > 10000


def test_byteweight_throughput(benchmark, big_binary, big_elf):
    from repro.baselines.byteweight_like import (
        ByteWeightLikeDetector,
        train_prefix_tree,
    )

    txt = big_elf.section(".text")
    tree = train_prefix_tree(
        [(txt.data, txt.sh_addr,
          big_binary.ground_truth.function_starts)])
    detector = ByteWeightLikeDetector(tree)
    result = benchmark(detector.detect, big_elf)
    assert result.functions
