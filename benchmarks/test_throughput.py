"""Microbenchmarks: decoder and detector throughput.

Two kinds of measurement live here:

- conventional pytest-benchmark runs of the hot paths behind Table
  III's timing column (linear sweep, each detector, the superset
  front end) — each round clears the binary's analysis context first,
  so the numbers reflect the *uncached* cost the paper compares;
- the cache trajectory benchmark, which regenerates a multi-detector
  Table III sweep three times (no disk cache / cold cache / warm
  cache), checks the outputs are bit-identical, measures the
  observability subsystem's overhead (tracing on, and the projected
  cost of the disabled null-recorder path), and publishes
  ``BENCH_throughput.json`` at the repo root.
"""

import asyncio
import hashlib
import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.baselines import (
    ALL_DETECTORS,
    FetchLikeDetector,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
)
from repro.cache import DiskCache, set_default_cache
from repro.cache.context import _ATTR as _CTX_ATTR
from repro.core.disassemble import disassemble
from repro.elf.parser import ELFFile
from repro.eval.runner import run_evaluation
from repro.service.jobs import JOB_DONE, JOB_FAILED, JobManager
from repro.synth import CompilerProfile, generate_program, link_program
from repro.x86 import superset, vector

from benchmarks.conftest import bench_scale

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SCHEMA = "bench-throughput/v1"


@pytest.fixture(scope="module")
def big_binary():
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("bench", 300, profile, seed=5, cxx=True)
    return link_program(spec, profile)


@pytest.fixture(scope="module")
def big_elf(big_binary):
    return ELFFile(big_binary.data)


def _cold_detect(detector, elf):
    """Run one detection with a fresh analysis context.

    The in-memory context would otherwise serve memoized sweeps after
    the first benchmark round, and these benchmarks exist to measure
    the real per-tool cost.
    """
    if hasattr(elf, _CTX_ATTR):
        delattr(elf, _CTX_ATTR)
    return detector.detect(elf)


def test_linear_sweep_throughput(benchmark, big_elf):
    txt = big_elf.section(".text")
    result = benchmark(disassemble, txt.data, txt.sh_addr, 64)
    assert result.insn_count > 10000
    benchmark.extra_info["bytes"] = len(txt.data)
    benchmark.extra_info["insns"] = result.insn_count


def test_funseeker_throughput(benchmark, big_elf):
    detector = FunSeekerDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_funseeker_warm_context_throughput(benchmark, big_elf):
    """The shared-artifact path: repeat identification on one parsed
    binary pays only the E'/C/J' set algebra, not the decode."""
    detector = FunSeekerDetector()
    _cold_detect(detector, big_elf)  # prime the context
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_fetch_throughput(benchmark, big_elf):
    detector = FetchLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_ghidra_throughput(benchmark, big_elf):
    detector = GhidraLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_ida_throughput(benchmark, big_elf):
    detector = IdaLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_robust_sweep_throughput(benchmark, big_elf):
    """The superset-validated front end pays a constant-factor cost
    over plain sweep (full-offset viability pass)."""
    from repro.core.robust import disassemble_robust
    from repro.x86.superset import clear_index_memo

    txt = big_elf.section(".text")

    def _run():
        clear_index_memo()  # measure the decode-at-every-offset pass
        return disassemble_robust(txt.data, txt.sh_addr, 64)

    result = benchmark(_run)
    assert result.insn_count > 10000


def test_byteweight_throughput(benchmark, big_binary, big_elf):
    from repro.baselines.byteweight_like import (
        ByteWeightLikeDetector,
        train_prefix_tree,
    )

    txt = big_elf.section(".text")
    tree = train_prefix_tree(
        [(txt.data, txt.sh_addr,
          big_binary.ground_truth.function_starts)])
    detector = ByteWeightLikeDetector(tree)
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


# ---------------------------------------------------------------------------
# Cache trajectory: BENCH_throughput.json
# ---------------------------------------------------------------------------

_SWEEP_TOOLS = ("funseeker", "ida", "ghidra", "fetch", "naive-endbr")


def _corpus_texts(corpus) -> list[tuple[bytes, int, int]]:
    """Every entry's ``.text`` image with its base and bitness."""
    texts = []
    for entry in corpus:
        elf = ELFFile(entry.stripped)
        txt = elf.section(".text")
        if txt is not None and txt.data:
            texts.append((bytes(txt.data), txt.sh_addr,
                          64 if elf.is64 else 32))
    return texts


def _sweep_sample(corpus, budget: int = 2_000_000):
    """Largest ``.text`` images until ~`budget` bytes are covered.

    The sweep microbenchmark below runs the scalar decoder at every
    offset, which is slow by design; sampling the big images keeps the
    benchmark under a minute while measuring the same per-byte cost.
    """
    texts = sorted(_corpus_texts(corpus),
                   key=lambda t: len(t[0]), reverse=True)
    sample, total = [], 0
    for text in texts:
        sample.append(text)
        total += len(text[0])
        if total >= budget:
            break
    return sample, total


def _superset_sweep(texts) -> tuple[float, str]:
    """Superset-classify every offset of every image.

    ``build_index`` is called directly (no memo) and the viability
    pass is forced, so scalar and vectorized runs do identical work.
    Returns the wall time and a digest of the length/class tables —
    the identity evidence for the scalar-vs-vectorized comparison
    (hashing happens outside the timed region).
    """
    indexes = []
    started = time.perf_counter()
    for data, addr, bits in texts:
        index = superset.build_index(data, bits, addr)
        _ = index.viable
        indexes.append(index)
    wall = time.perf_counter() - started
    digest = hashlib.sha256()
    for index in indexes:
        digest.update(index.lengths)
        digest.update(index.klasses)
        digest.update(index.viable)
    return wall, digest.hexdigest()


def _table3_sweep(corpus) -> tuple[float, dict]:
    """One serial multi-detector sweep; returns wall time and outcomes."""
    detectors = {name: ALL_DETECTORS[name]() for name in _SWEEP_TOOLS}
    started = time.perf_counter()
    report = run_evaluation(corpus, detectors)
    wall = time.perf_counter() - started
    assert not report.failures, [f.message for f in report.failures]
    per_tool: dict[str, float] = {name: 0.0 for name in _SWEEP_TOOLS}
    outputs: dict[tuple, tuple] = {}
    for rec in report.records:
        per_tool[rec.tool] += rec.elapsed_seconds
        key = (rec.suite, rec.program, rec.compiler, rec.bits, rec.pie,
               rec.opt, rec.tool)
        outputs[key] = (rec.confusion.tp, rec.confusion.fp,
                        rec.confusion.fn)
    return wall, {"per_tool": per_tool, "outputs": outputs}


def _null_op_costs(iterations: int = 200_000) -> tuple[float, float]:
    """Measured per-call cost of the disabled recorder's span and add.

    The disabled path is exactly these two operations sprinkled through
    the pipeline, so (cost × call count) projects the overhead tracing
    support adds to an untraced sweep — stabler than differencing two
    noisy wall-clock runs.
    """
    null = obs.NullRecorder()
    started = time.perf_counter()
    for _ in range(iterations):
        with null.span("x", attr=1):
            pass
    per_span = (time.perf_counter() - started) / iterations
    started = time.perf_counter()
    for _ in range(iterations):
        null.add("x", 1)
    per_add = (time.perf_counter() - started) / iterations
    return per_span, per_add


def _live_op_costs(iterations: int = 100_000) -> tuple[float, float]:
    """Measured per-call cost of an *active* TraceRecorder's span/add.

    Same projection idea as :func:`_null_op_costs`, for the traced run:
    (cost × call count) is the overhead recording actually adds to a
    sweep. Differencing the traced and untraced walls measures the
    same thing in principle, but a few percent of machine drift
    between two ~5 s runs swamps a sub-1% true cost; the projection
    is stable run to run.
    """
    rec = obs.TraceRecorder()
    started = time.perf_counter()
    for _ in range(iterations):
        with rec.span("x", attr=1):
            pass
    per_span = (time.perf_counter() - started) / iterations
    started = time.perf_counter()
    for _ in range(iterations):
        rec.add("x", 1)
    per_add = (time.perf_counter() - started) / iterations
    return per_span, per_add


def test_cache_trajectory_emits_bench_json(corpus, tmp_path):
    total_bytes = sum(len(e.stripped) for e in corpus)

    set_default_cache(None)

    # Legacy reference: the scalar decoder, vectorization forced off.
    # Runs first so the vectorized trajectory below is measured against
    # a cold process (no shared indexes, no def-use memo warm-up).
    vector.set_enabled(False)
    superset.clear_index_memo()
    try:
        legacy_wall, legacy = _table3_sweep(corpus)
    finally:
        vector.set_enabled(None)
        superset.clear_index_memo()

    # The superset front end in isolation: classify every offset of the
    # largest images with the scalar decoder, then vectorized. This is
    # the pass the vectorized rewrite targets; the digests prove the
    # two produce bit-identical length/class/viability tables.
    sweep_sample, sweep_bytes = _sweep_sample(corpus)
    vector.set_enabled(False)
    try:
        sweep_legacy_wall, sweep_legacy_digest = \
            _superset_sweep(sweep_sample)
    finally:
        vector.set_enabled(None)
    sweep_vec_wall, sweep_vec_digest = _superset_sweep(sweep_sample)
    assert sweep_vec_digest == sweep_legacy_digest, \
        "vectorized superset tables diverged from the scalar decoder"
    # The vectorized wall is small enough for scheduler noise to move
    # the ratio; best-of-two, like the trajectory walls below.
    sweep_vec_rerun, _ = _superset_sweep(sweep_sample)
    sweep_vec_wall = min(sweep_vec_wall, sweep_vec_rerun)

    # The uncached / traced / cold walls feed ratio assertions that a
    # couple percent of noise can flip, and machine speed drifts over a
    # minute-long benchmark (page cache, frequency scaling) — a slow
    # first run would bias every ratio the same way. So the three
    # configurations are sampled *interleaved*, once per round, and
    # each wall takes the best of rounds: drift hits all three equally.
    # Each cold round populates its own empty cache directory; the warm
    # run afterwards hits the last round's entries.
    uncached_walls: list[float] = []
    traced_walls: list[float] = []
    cold_walls: list[float] = []
    uncached = traced = cold = None
    recorder = None
    cache = None
    for round_no in range(2):
        wall, out = _table3_sweep(corpus)
        uncached_walls.append(wall)
        uncached = uncached if uncached is not None else out

        rec = obs.set_recorder(obs.TraceRecorder())
        try:
            wall, out = _table3_sweep(corpus)
        finally:
            obs.set_recorder(None)
        traced_walls.append(wall)
        traced = traced if traced is not None else out
        recorder = recorder if recorder is not None else rec

        cache = DiskCache(tmp_path / f"cache-{round_no}")
        set_default_cache(cache)
        wall, out = _table3_sweep(corpus)
        set_default_cache(None)
        cold_walls.append(wall)
        cold = cold if cold is not None else out

    set_default_cache(cache)
    warm_wall, warm = _table3_sweep(corpus)
    set_default_cache(None)
    uncached_wall = min(uncached_walls)
    traced_wall = min(traced_walls)
    cold_wall = min(cold_walls)

    assert uncached["outputs"] == legacy["outputs"], \
        "vectorized sweep diverged from the legacy decoder"
    assert traced["outputs"] == uncached["outputs"], \
        "traced sweep diverged from uncached"
    assert cold["outputs"] == uncached["outputs"], \
        "cold-cache sweep diverged from uncached"
    assert warm["outputs"] == uncached["outputs"], \
        "warm-cache sweep diverged from uncached"
    assert cache.stats.hits > 0
    obs_phase_seconds = recorder.phase_totals()
    span_count = len(recorder.spans)
    assert span_count > 0 and recorder.counters.get("detect.runs")

    def _mbps(wall: float) -> float:
        return total_bytes / 1e6 / wall if wall else 0.0

    per_tool_speedup = {
        name: (uncached["per_tool"][name] / warm["per_tool"][name]
               if warm["per_tool"][name] else float("inf"))
        for name in _SWEEP_TOOLS
    }
    doc = {
        "schema": BENCH_SCHEMA,
        "description": "Table III regeneration: multi-detector serial "
                       "sweep without disk cache, with an empty cache "
                       "(cold), and against the populated cache (warm)",
        "tools": list(_SWEEP_TOOLS),
        "binaries": len(corpus),
        "total_bytes": total_bytes,
        "runs": {
            "legacy": {
                "wall_seconds": round(legacy_wall, 4),
                "mb_per_s": round(_mbps(legacy_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4)
                    for k, v in legacy["per_tool"].items()},
            },
            "uncached": {
                "wall_seconds": round(uncached_wall, 4),
                "mb_per_s": round(_mbps(uncached_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4)
                    for k, v in uncached["per_tool"].items()},
            },
            "cold": {
                "wall_seconds": round(cold_wall, 4),
                "mb_per_s": round(_mbps(cold_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4) for k, v in cold["per_tool"].items()},
            },
            "warm": {
                "wall_seconds": round(warm_wall, 4),
                "mb_per_s": round(_mbps(warm_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4) for k, v in warm["per_tool"].items()},
            },
        },
        "speedup": {
            "warm_vs_uncached_wall": round(uncached_wall / warm_wall, 2),
            "per_tool_detect": {
                k: round(v, 2) for k, v in per_tool_speedup.items()},
        },
        "identical_outputs": True,
        "vectorized": {
            "available": vector.available(),
            "wall_seconds": round(uncached_wall, 4),
            "mb_per_s": round(_mbps(uncached_wall), 3),
            "legacy_mb_per_s": round(_mbps(legacy_wall), 3),
            "speedup_vs_legacy_wall": round(
                legacy_wall / uncached_wall, 2) if uncached_wall else 0.0,
            # The superset front end in isolation (classify every
            # offset): this is the pass the rewrite vectorizes, and
            # where the 10-50x target applies. The end-to-end walls
            # above include the per-function detector logic that the
            # decode no longer dominates.
            "sweep": {
                "sample_bytes": sweep_bytes,
                "legacy_wall_seconds": round(sweep_legacy_wall, 4),
                "legacy_mb_per_s": round(
                    sweep_bytes / 1e6 / sweep_legacy_wall, 3)
                    if sweep_legacy_wall else 0.0,
                "wall_seconds": round(sweep_vec_wall, 4),
                "mb_per_s": round(sweep_bytes / 1e6 / sweep_vec_wall, 3)
                    if sweep_vec_wall else 0.0,
                "speedup": round(sweep_legacy_wall / sweep_vec_wall, 2)
                    if sweep_vec_wall else 0.0,
            },
            "identical_outputs": True,
        },
        # census minus "root": the cache lives in a throwaway tmp dir
        # and the committed document must not embed machine paths.
        "cache": {k: v for k, v in cache.census().items() if k != "root"},
    }
    per_span, per_add = _null_op_costs()
    # Counter adds are batched per region (one add per counter name per
    # region, ~3 names), so spans dominate; 3 adds per span is a
    # generous ceiling on the disabled path's call volume.
    disabled_cost = span_count * (per_span + 3 * per_add)
    disabled_overhead_pct = 100.0 * disabled_cost / uncached_wall
    live_span, live_add = _live_op_costs()
    tracing_cost = span_count * (live_span + 3 * live_add)
    tracing_overhead_pct = 100.0 * tracing_cost / uncached_wall
    doc["obs"] = {
        "traced_wall_seconds": round(traced_wall, 4),
        # Raw wall difference, informational only: with ~8k spans per
        # sweep the true recording cost is well under 1%, so this
        # number is dominated by machine drift and can land anywhere
        # within a few percent of zero (negative included).
        "traced_vs_uncached_wall_pct": round(
            100.0 * (traced_wall - uncached_wall) / uncached_wall, 2),
        "tracing_overhead_pct": round(tracing_overhead_pct, 4),
        "span_count": span_count,
        "null_span_ns": round(per_span * 1e9, 1),
        "null_add_ns": round(per_add * 1e9, 1),
        "live_span_ns": round(live_span * 1e9, 1),
        "live_add_ns": round(live_add * 1e9, 1),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "phase_seconds": {
            k: round(v, 4) for k, v in sorted(obs_phase_seconds.items())},
    }
    assert disabled_overhead_pct < 2.0, \
        "disabled-path observability overhead above the 2% bar"
    out = REPO_ROOT / "BENCH_throughput.json"
    out.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nwrote {out}")
    print(f"warm-vs-uncached wall speedup: "
          f"{doc['speedup']['warm_vs_uncached_wall']}x")
    print(f"vectorized-vs-legacy wall speedup: "
          f"{doc['vectorized']['speedup_vs_legacy_wall']}x "
          f"(superset sweep: {doc['vectorized']['sweep']['speedup']}x)")
    assert uncached_wall / warm_wall >= 3.0, \
        "warm-cache Table III regeneration below the 3x bar"
    # The 10x bar applies to the pass the rewrite vectorizes — the
    # superset sweep classifying every offset — and is calibrated for
    # the Table III corpus (the default "small" scale); the "tiny"
    # iteration corpus is dominated by per-call fixed costs. The
    # end-to-end wall improves by a smaller factor because the
    # remaining time is per-function detector logic, not decode.
    if vector.available() and bench_scale() != "tiny":
        assert sweep_legacy_wall / sweep_vec_wall >= 10.0, \
            "vectorized superset sweep below the 10x-vs-scalar bar"
        assert legacy_wall / uncached_wall >= 2.0, \
            "vectorized end-to-end sweep below the 2x-vs-legacy bar"
    assert cold_wall <= 1.3 * uncached_wall, \
        "cold-cache sweep above 1.3x the uncached wall clock"
    # Projected from measured per-op recording cost × span count; the
    # raw traced-vs-uncached wall difference is reported alongside but
    # not asserted on (drift-dominated, see _live_op_costs).
    assert doc["obs"]["tracing_overhead_pct"] < 2.0, \
        "traced sweep overhead above the documented 2% bound"


# ---------------------------------------------------------------------------
# Service latency: the "service" section of BENCH_throughput.json
# ---------------------------------------------------------------------------

_SERVICE_TOOLS = _SWEEP_TOOLS
_SERVICE_IMAGE_CAP = 16
_WARM_ROUNDS = 5


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


async def _cold_service_run(run_dir, cache_root, images,
                            isolation="thread"):
    """Submit every image to a fresh manager over an empty cache."""
    manager = JobManager(
        run_dir, tools=list(_SERVICE_TOOLS), cache_root=cache_root,
        queue_size=len(images) + 8, executor_workers=2,
        isolation=isolation)
    await manager.start()
    started = time.perf_counter()
    jobs = [manager.submit(image)[0] for image in images]
    while any(j.status not in (JOB_DONE, JOB_FAILED) for j in jobs):
        await asyncio.sleep(0.005)
    wall = time.perf_counter() - started
    failed = [j for j in jobs if j.status == JOB_FAILED]
    assert not failed, [j.error for j in failed]
    await manager.stop()
    return wall


def test_service_warm_lookup_emits_bench_section(corpus, tmp_path):
    """Measure the job API's warm path and merge it into the bench doc.

    A cold run populates a tenant cache namespace through the service's
    own execution path, then repeated fresh managers (a new run
    directory per round defeats job dedup; the shared cache root keeps
    the namespace warm) time ``submit()`` — on the warm path a
    submission completes synchronously from disk artifacts, with no
    parse and no executor hop, so each call's wall time IS the
    warm-lookup latency a client would see.
    """
    # Largest images first (like _sweep_sample): the isolation
    # comparison below divides a per-job IPC constant by per-job
    # compute, and the corpus's smallest entries analyze in ~1ms.
    images, seen = [], set()
    for entry in sorted(corpus, key=lambda e: len(e.stripped),
                        reverse=True):
        sha = hashlib.sha256(entry.stripped).hexdigest()
        if sha in seen:
            continue
        seen.add(sha)
        images.append(entry.stripped)
        if len(images) >= _SERVICE_IMAGE_CAP:
            break
    assert images

    # The cold workload through both executors — the in-process thread
    # pool and supervised worker subprocesses. Crash containment and
    # enforced deadlines must not tax the happy path: fork-spawned
    # workers are reused across jobs, so the steady state pays only
    # payload pickling and a pipe round trip per job. Interleaved
    # best-of-two, like the trajectory walls above: the walls are short
    # enough for scheduler noise to flip a ratio assertion. Every round
    # gets a fresh run dir (defeats dedup) and an empty cache namespace
    # (keeps it genuinely cold); round 0's thread cache doubles as the
    # warm namespace the lookup rounds below hit.
    cache_root = tmp_path / "service-cache"
    thread_walls: list[float] = []
    supervised_walls: list[float] = []
    for round_no in range(2):
        thread_cache = cache_root if round_no == 0 \
            else tmp_path / f"thread-cache-{round_no}"
        thread_walls.append(asyncio.run(_cold_service_run(
            tmp_path / f"cold-{round_no}", thread_cache, images)))
        supervised_walls.append(asyncio.run(_cold_service_run(
            tmp_path / f"cold-supervised-{round_no}",
            tmp_path / f"supervised-cache-{round_no}", images,
            isolation="process")))
    cold_wall = min(thread_walls)
    supervised_wall = min(supervised_walls)
    isolation_overhead_pct = (
        100.0 * (supervised_wall - cold_wall) / cold_wall)
    assert isolation_overhead_pct < 20.0, \
        "supervised process isolation above the 20% overhead budget"

    latencies: list[float] = []
    warm_started = time.perf_counter()
    for round_no in range(_WARM_ROUNDS):
        manager = JobManager(
            tmp_path / f"warm-{round_no}",
            tools=list(_SERVICE_TOOLS), cache_root=cache_root,
            queue_size=len(images) + 8)
        try:
            for image in images:
                started = time.perf_counter()
                job, created = manager.submit(image)
                latencies.append(time.perf_counter() - started)
                assert created and job.status == JOB_DONE
                assert job.analysis.warm, \
                    "warm submission fell through to a full analysis"
        finally:
            asyncio.run(manager.stop())
    warm_wall = time.perf_counter() - warm_started

    cold_per_job = cold_wall / len(images)
    warm_p50 = _percentile(latencies, 0.50)
    assert warm_p50 < cold_per_job, \
        "warm lookups are no faster than cold analyses"

    out = REPO_ROOT / "BENCH_throughput.json"
    doc = json.loads(out.read_text()) if out.exists() \
        else {"schema": BENCH_SCHEMA}
    doc["service"] = {
        "description": "analysis job API: cold submissions executed "
                       "through the service worker path, then "
                       "warm-lookup submissions served synchronously "
                       "from the populated tenant cache",
        "tools": list(_SERVICE_TOOLS),
        "binaries": len(images),
        "warm_rounds": _WARM_ROUNDS,
        "cold": {
            "wall_seconds": round(cold_wall, 4),
            "jobs_per_s": round(len(images) / cold_wall, 2),
        },
        "isolation": {
            "description": "the cold workload repeated through "
                           "supervised worker subprocesses (enforced "
                           "deadlines, crash containment) vs the "
                           "in-process thread executor",
            "thread_wall_seconds": round(cold_wall, 4),
            "supervised_wall_seconds": round(supervised_wall, 4),
            "supervised_jobs_per_s": round(
                len(images) / supervised_wall, 2),
            "overhead_pct": round(isolation_overhead_pct, 2),
        },
        "warm_lookup": {
            "submissions": len(latencies),
            "p50_ms": round(warm_p50 * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "jobs_per_s": round(len(latencies) / warm_wall, 1),
            "speedup_vs_cold": round(
                cold_per_job / (warm_wall / len(latencies)), 1),
        },
    }
    out.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nwrote {out} (service section)")
    print(f"supervised isolation overhead "
          f"{doc['service']['isolation']['overhead_pct']}% "
          f"over the thread executor (cold)")
    print(f"warm-lookup p50 {doc['service']['warm_lookup']['p50_ms']}ms "
          f"p99 {doc['service']['warm_lookup']['p99_ms']}ms, "
          f"{doc['service']['warm_lookup']['jobs_per_s']} jobs/s "
          f"({doc['service']['warm_lookup']['speedup_vs_cold']}x cold)")
