"""Microbenchmarks: decoder and detector throughput.

Two kinds of measurement live here:

- conventional pytest-benchmark runs of the hot paths behind Table
  III's timing column (linear sweep, each detector, the superset
  front end) — each round clears the binary's analysis context first,
  so the numbers reflect the *uncached* cost the paper compares;
- the cache trajectory benchmark, which regenerates a multi-detector
  Table III sweep three times (no disk cache / cold cache / warm
  cache), checks the outputs are bit-identical, measures the
  observability subsystem's overhead (tracing on, and the projected
  cost of the disabled null-recorder path), and publishes
  ``BENCH_throughput.json`` at the repo root.
"""

import json
import time
from pathlib import Path

import pytest

from repro import obs
from repro.baselines import (
    ALL_DETECTORS,
    FetchLikeDetector,
    FunSeekerDetector,
    GhidraLikeDetector,
    IdaLikeDetector,
)
from repro.cache import DiskCache, set_default_cache
from repro.cache.context import _ATTR as _CTX_ATTR
from repro.core.disassemble import disassemble
from repro.elf.parser import ELFFile
from repro.eval.runner import run_evaluation
from repro.synth import CompilerProfile, generate_program, link_program

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_SCHEMA = "bench-throughput/v1"


@pytest.fixture(scope="module")
def big_binary():
    profile = CompilerProfile("gcc", "O2", 64, True)
    spec = generate_program("bench", 300, profile, seed=5, cxx=True)
    return link_program(spec, profile)


@pytest.fixture(scope="module")
def big_elf(big_binary):
    return ELFFile(big_binary.data)


def _cold_detect(detector, elf):
    """Run one detection with a fresh analysis context.

    The in-memory context would otherwise serve memoized sweeps after
    the first benchmark round, and these benchmarks exist to measure
    the real per-tool cost.
    """
    if hasattr(elf, _CTX_ATTR):
        delattr(elf, _CTX_ATTR)
    return detector.detect(elf)


def test_linear_sweep_throughput(benchmark, big_elf):
    txt = big_elf.section(".text")
    result = benchmark(disassemble, txt.data, txt.sh_addr, 64)
    assert result.insn_count > 10000
    benchmark.extra_info["bytes"] = len(txt.data)
    benchmark.extra_info["insns"] = result.insn_count


def test_funseeker_throughput(benchmark, big_elf):
    detector = FunSeekerDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_funseeker_warm_context_throughput(benchmark, big_elf):
    """The shared-artifact path: repeat identification on one parsed
    binary pays only the E'/C/J' set algebra, not the decode."""
    detector = FunSeekerDetector()
    _cold_detect(detector, big_elf)  # prime the context
    result = benchmark(detector.detect, big_elf)
    assert result.functions


def test_fetch_throughput(benchmark, big_elf):
    detector = FetchLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_ghidra_throughput(benchmark, big_elf):
    detector = GhidraLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_ida_throughput(benchmark, big_elf):
    detector = IdaLikeDetector()
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


def test_robust_sweep_throughput(benchmark, big_elf):
    """The superset-validated front end pays a constant-factor cost
    over plain sweep (full-offset viability pass)."""
    from repro.core.robust import disassemble_robust
    from repro.x86.superset import clear_index_memo

    txt = big_elf.section(".text")

    def _run():
        clear_index_memo()  # measure the decode-at-every-offset pass
        return disassemble_robust(txt.data, txt.sh_addr, 64)

    result = benchmark(_run)
    assert result.insn_count > 10000


def test_byteweight_throughput(benchmark, big_binary, big_elf):
    from repro.baselines.byteweight_like import (
        ByteWeightLikeDetector,
        train_prefix_tree,
    )

    txt = big_elf.section(".text")
    tree = train_prefix_tree(
        [(txt.data, txt.sh_addr,
          big_binary.ground_truth.function_starts)])
    detector = ByteWeightLikeDetector(tree)
    result = benchmark(_cold_detect, detector, big_elf)
    assert result.functions


# ---------------------------------------------------------------------------
# Cache trajectory: BENCH_throughput.json
# ---------------------------------------------------------------------------

_SWEEP_TOOLS = ("funseeker", "ida", "ghidra", "fetch", "naive-endbr")


def _table3_sweep(corpus) -> tuple[float, dict]:
    """One serial multi-detector sweep; returns wall time and outcomes."""
    detectors = {name: ALL_DETECTORS[name]() for name in _SWEEP_TOOLS}
    started = time.perf_counter()
    report = run_evaluation(corpus, detectors)
    wall = time.perf_counter() - started
    assert not report.failures, [f.message for f in report.failures]
    per_tool: dict[str, float] = {name: 0.0 for name in _SWEEP_TOOLS}
    outputs: dict[tuple, tuple] = {}
    for rec in report.records:
        per_tool[rec.tool] += rec.elapsed_seconds
        key = (rec.suite, rec.program, rec.compiler, rec.bits, rec.pie,
               rec.opt, rec.tool)
        outputs[key] = (rec.confusion.tp, rec.confusion.fp,
                        rec.confusion.fn)
    return wall, {"per_tool": per_tool, "outputs": outputs}


def _null_op_costs(iterations: int = 200_000) -> tuple[float, float]:
    """Measured per-call cost of the disabled recorder's span and add.

    The disabled path is exactly these two operations sprinkled through
    the pipeline, so (cost × call count) projects the overhead tracing
    support adds to an untraced sweep — stabler than differencing two
    noisy wall-clock runs.
    """
    null = obs.NullRecorder()
    started = time.perf_counter()
    for _ in range(iterations):
        with null.span("x", attr=1):
            pass
    per_span = (time.perf_counter() - started) / iterations
    started = time.perf_counter()
    for _ in range(iterations):
        null.add("x", 1)
    per_add = (time.perf_counter() - started) / iterations
    return per_span, per_add


def test_cache_trajectory_emits_bench_json(corpus, tmp_path):
    total_bytes = sum(len(e.stripped) for e in corpus)

    set_default_cache(None)
    uncached_wall, uncached = _table3_sweep(corpus)

    # Same uncached configuration with a live trace recorder: the
    # outputs must not change, and the slowdown is the cost of tracing.
    recorder = obs.set_recorder(obs.TraceRecorder())
    try:
        traced_wall, traced = _table3_sweep(corpus)
    finally:
        obs.set_recorder(None)
    assert traced["outputs"] == uncached["outputs"], \
        "traced sweep diverged from uncached"
    obs_phase_seconds = recorder.phase_totals()
    span_count = len(recorder.spans)
    assert span_count > 0 and recorder.counters.get("detect.runs")

    cache = DiskCache(tmp_path / "cache")
    set_default_cache(cache)
    cold_wall, cold = _table3_sweep(corpus)
    warm_wall, warm = _table3_sweep(corpus)
    set_default_cache(None)

    assert cold["outputs"] == uncached["outputs"], \
        "cold-cache sweep diverged from uncached"
    assert warm["outputs"] == uncached["outputs"], \
        "warm-cache sweep diverged from uncached"
    assert cache.stats.hits > 0

    def _mbps(wall: float) -> float:
        return total_bytes / 1e6 / wall if wall else 0.0

    per_tool_speedup = {
        name: (uncached["per_tool"][name] / warm["per_tool"][name]
               if warm["per_tool"][name] else float("inf"))
        for name in _SWEEP_TOOLS
    }
    doc = {
        "schema": BENCH_SCHEMA,
        "description": "Table III regeneration: multi-detector serial "
                       "sweep without disk cache, with an empty cache "
                       "(cold), and against the populated cache (warm)",
        "tools": list(_SWEEP_TOOLS),
        "binaries": len(corpus),
        "total_bytes": total_bytes,
        "runs": {
            "uncached": {
                "wall_seconds": round(uncached_wall, 4),
                "mb_per_s": round(_mbps(uncached_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4)
                    for k, v in uncached["per_tool"].items()},
            },
            "cold": {
                "wall_seconds": round(cold_wall, 4),
                "mb_per_s": round(_mbps(cold_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4) for k, v in cold["per_tool"].items()},
            },
            "warm": {
                "wall_seconds": round(warm_wall, 4),
                "mb_per_s": round(_mbps(warm_wall), 3),
                "per_tool_seconds": {
                    k: round(v, 4) for k, v in warm["per_tool"].items()},
            },
        },
        "speedup": {
            "warm_vs_uncached_wall": round(uncached_wall / warm_wall, 2),
            "per_tool_detect": {
                k: round(v, 2) for k, v in per_tool_speedup.items()},
        },
        "identical_outputs": True,
        # census minus "root": the cache lives in a throwaway tmp dir
        # and the committed document must not embed machine paths.
        "cache": {k: v for k, v in cache.census().items() if k != "root"},
    }
    per_span, per_add = _null_op_costs()
    # Counter adds are batched per region (one add per counter name per
    # region, ~3 names), so spans dominate; 3 adds per span is a
    # generous ceiling on the disabled path's call volume.
    disabled_cost = span_count * (per_span + 3 * per_add)
    disabled_overhead_pct = 100.0 * disabled_cost / uncached_wall
    doc["obs"] = {
        "traced_wall_seconds": round(traced_wall, 4),
        "tracing_overhead_pct": round(
            100.0 * (traced_wall - uncached_wall) / uncached_wall, 2),
        "span_count": span_count,
        "null_span_ns": round(per_span * 1e9, 1),
        "null_add_ns": round(per_add * 1e9, 1),
        "disabled_overhead_pct": round(disabled_overhead_pct, 4),
        "phase_seconds": {
            k: round(v, 4) for k, v in sorted(obs_phase_seconds.items())},
    }
    assert disabled_overhead_pct < 2.0, \
        "disabled-path observability overhead above the 2% bar"
    out = REPO_ROOT / "BENCH_throughput.json"
    out.write_text(json.dumps(doc, indent=1) + "\n")
    print(f"\nwrote {out}")
    print(f"warm-vs-uncached wall speedup: "
          f"{doc['speedup']['warm_vs_uncached_wall']}x")
    assert uncached_wall / warm_wall >= 3.0, \
        "warm-cache Table III regeneration below the 3x bar"
