"""Configuration robustness: FunSeeker across the paper's build matrix.

The paper's dataset deliberately spans compilers, architectures, PIE
modes, and six optimization levels (§III-A) so that results are not an
artifact of one configuration. This bench slices Table III's FunSeeker
run along every configuration axis and asserts it stays strong on all
of them — the property pattern-matching tools lack (§VII-B).
"""

from benchmarks.conftest import publish
from repro.baselines import FunSeekerDetector
from repro.eval.runner import run_evaluation


def test_funseeker_across_configurations(benchmark, corpus, results_dir):
    report = benchmark.pedantic(
        lambda: run_evaluation(corpus, {"fs": FunSeekerDetector()}),
        rounds=1, iterations=1,
    )
    lines = ["ROBUSTNESS: FunSeeker per configuration axis"]
    checks: list[tuple[str, float, float]] = []

    for attr, values in (
        ("compiler", ["gcc", "clang"]),
        ("bits", [32, 64]),
        ("pie", [True, False]),
        ("opt", sorted({r.opt for r in report.records})),
    ):
        for value in values:
            sub = report.filtered(**{attr: value})
            if not sub.records:
                continue
            pooled = sub.pooled()
            lines.append(
                f"  {attr}={value!s:6s} P={100 * pooled.precision:6.2f} "
                f"R={100 * pooled.recall:6.2f} "
                f"({len(sub.records)} binaries)"
            )
            checks.append((f"{attr}={value}", pooled.precision,
                           pooled.recall))
    publish(results_dir, "config_robustness", "\n".join(lines))

    for label, precision, recall in checks:
        assert precision > 0.98, f"precision dip at {label}"
        assert recall > 0.97, f"recall dip at {label}"
