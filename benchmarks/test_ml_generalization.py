"""Related-work bench (§VII-B): learned detectors vs unseen patterns.

Trains a ByteWeight-style prefix tree on gcc/x86-64/O2 binaries and
evaluates it in-distribution and under two shifts — manual-endbr
binaries (marker distribution changes) and 32-bit binaries (endbr32,
different prologues) — with FunSeeker as the training-free reference.

Claims asserted (Koo et al., cited in §VII): the learned model is
competitive in-distribution but degrades sharply on unseen patterns;
FunSeeker, which needs no training phase, does not.
"""

from benchmarks.conftest import publish
from repro.baselines.byteweight_like import (
    ByteWeightLikeDetector,
    train_prefix_tree,
)
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile, strip_symbols
from repro.eval.metrics import Confusion, score
from repro.synth import CompilerProfile, generate_program, link_program

TRAIN_PROFILE = CompilerProfile("gcc", "O2", 64, True)


def _binary(seed, profile=TRAIN_PROFILE, **kw):
    spec = generate_program("mlb", 90, profile, seed=seed, **kw)
    return link_program(spec, profile)


def _evaluate(tree, binaries):
    bw = Confusion()
    fs = Confusion()
    for binary in binaries:
        stripped = strip_symbols(binary.data)
        gt = binary.ground_truth.function_starts
        bw.add(score(gt, ByteWeightLikeDetector(tree)
                     .detect(ELFFile(stripped)).functions))
        fs.add(score(gt, FunSeeker.from_bytes(stripped)
                     .identify().functions))
    return bw, fs


def _run():
    training = []
    for seed in range(6):
        binary = _binary(seed)
        elf = ELFFile(binary.data)
        txt = elf.section(".text")
        training.append((txt.data, txt.sh_addr,
                         binary.ground_truth.function_starts))
    tree = train_prefix_tree(training)

    in_dist = [_binary(seed) for seed in range(100, 104)]
    shifted = [_binary(seed, manual_endbr=True)
               for seed in range(100, 104)]
    return {
        "in-dist": _evaluate(tree, in_dist),
        "manual-endbr": _evaluate(tree, shifted),
    }


def test_ml_generalization(benchmark, results_dir):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = ["RELATED WORK: learned detector vs unseen patterns (§VII-B)"]
    for name, (bw, fs) in results.items():
        lines.append(
            f"  {name:13s} byteweight P={100 * bw.precision:6.2f} "
            f"R={100 * bw.recall:6.2f} | funseeker "
            f"P={100 * fs.precision:6.2f} R={100 * fs.recall:6.2f}"
        )
    publish(results_dir, "ml_generalization", "\n".join(lines))

    bw_in, fs_in = results["in-dist"]
    bw_sh, fs_sh = results["manual-endbr"]
    assert bw_in.recall > 0.8, "competitive in-distribution"
    assert bw_sh.recall < bw_in.recall - 0.15, \
        "sharp degradation on the shifted distribution"
    assert fs_sh.recall > 0.95, "FunSeeker needs no training phase"
    assert fs_in.recall > 0.95
