"""Downstream experiment: function *boundary* recovery quality.

The paper evaluates entry identification; boundaries (entry + size) are
the next thing every consumer needs (§VII-B). This bench feeds each
tool's entries into the CFG recoverer and scores the estimated
boundaries against ground-truth sizes — quantifying how entry-detection
quality propagates downstream.

Claims asserted: with FunSeeker entries, the large majority of
boundaries land within one alignment pad of the truth; with IDA-like
entries (low recall) boundary quality degrades because missed entries
merge adjacent functions.
"""

from benchmarks.conftest import publish
from repro.baselines import FunSeekerDetector, IdaLikeDetector
from repro.cfg import recover_program_cfg
from repro.elf.parser import ELFFile

TOLERANCE = 16  # one alignment pad


def _boundary_accuracy(corpus, detector) -> tuple[int, int]:
    close = 0
    total = 0
    for entry in corpus:
        if entry.profile.bits != 64:
            continue  # one arch suffices for the downstream story
        elf = ELFFile(entry.stripped)
        functions = detector.detect(elf).functions
        program = recover_program_cfg(elf, functions)
        for rec in entry.binary.ground_truth.entries:
            if not rec.is_function:
                continue
            total += 1
            cfg = program.functions.get(rec.address)
            if cfg is None:
                continue
            true_end = rec.address + rec.size
            if abs(cfg.high_addr - true_end) <= TOLERANCE:
                close += 1
    return close, total


def test_boundary_recovery(benchmark, corpus, results_dir):
    def run():
        return {
            "funseeker": _boundary_accuracy(corpus, FunSeekerDetector()),
            "ida": _boundary_accuracy(corpus, IdaLikeDetector()),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["DOWNSTREAM: function boundary recovery "
             f"(within {TOLERANCE} bytes of truth)"]
    rates = {}
    for tool, (close, total) in results.items():
        rate = close / total if total else 0.0
        rates[tool] = rate
        lines.append(f"  {tool:10s} {close}/{total} = {100 * rate:.1f}%")
    publish(results_dir, "boundary_recovery", "\n".join(lines))

    assert rates["funseeker"] > 0.75
    assert rates["funseeker"] > rates["ida"] + 0.1, \
        "missed entries merge functions and wreck boundaries"
