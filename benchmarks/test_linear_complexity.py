"""Complexity bench: FunSeeker's runtime is linear in binary size.

The paper's conclusion (§VIII) states the algorithm's "complexity is
linear in the size of the target binary". This bench generates binaries
of geometrically increasing text size, measures the identification
time, and asserts the growth is consistent with linearity (time per
byte stays flat rather than growing).
"""

from benchmarks.conftest import publish
from repro.core.funseeker import FunSeeker
from repro.elf.parser import ELFFile
from repro.synth import CompilerProfile, generate_program, link_program

SIZES = (50, 100, 200, 400, 800)


def _measure():
    profile = CompilerProfile("gcc", "O2", 64, True)
    points = []
    for n in SIZES:
        spec = generate_program("lin", n, profile, seed=n)
        binary = link_program(spec, profile)
        elf = ELFFile(binary.data)
        text_size = elf.section(".text").sh_size
        seeker = FunSeeker(elf)
        seeker.identify()  # warm caches
        elapsed = min(seeker.identify().elapsed_seconds
                      for _ in range(3))
        points.append((text_size, elapsed))
    return points


def test_linear_scaling(benchmark, results_dir):
    points = benchmark.pedantic(_measure, rounds=1, iterations=1)
    lines = ["COMPLEXITY: FunSeeker runtime vs text size (§VIII)"]
    per_byte = []
    for size, elapsed in points:
        rate = elapsed / size * 1e9
        per_byte.append(rate)
        lines.append(f"  {size:8d} B  {elapsed * 1000:7.2f} ms  "
                     f"{rate:6.1f} ns/B")
    publish(results_dir, "linear_complexity", "\n".join(lines))

    # Linearity: cost per byte must not grow with size. Allow generous
    # noise; superlinear behaviour would multiply it.
    smallest = per_byte[0]
    largest = per_byte[-1]
    assert largest < smallest * 2.0, \
        f"per-byte cost grew {largest / smallest:.1f}x across sizes"
    # And the largest binary must still be fast in absolute terms.
    assert points[-1][1] < 2.0
