"""Regenerate Table III: FunSeeker vs IDA/Ghidra/FETCH, plus the §V-C
error breakdown.

Paper claims reproduced here:

- FunSeeker achieves the best precision and recall overall (>99/99);
- IDA-style traversal has the lowest recall (paper: 76.3% total);
- Ghidra's recall collapses on x86 binaries lacking FDEs;
- FETCH's recall collapses to ~50% on x86 (Clang emits no FDEs there)
  while staying precise elsewhere;
- FunSeeker is several times faster than FETCH (paper: 5.1x);
- FunSeeker's FNs are predominantly dead functions (93.3%) and its FPs
  are all ``.part``/``.cold`` fragment references.
"""

from benchmarks.conftest import publish
from repro.eval.tables import error_breakdown, table3


def test_table3(benchmark, corpus, results_dir):
    text, report = benchmark.pedantic(
        lambda: table3(corpus), rounds=1, iterations=1
    )
    publish(results_dir, "table3", text)

    pooled = {t: report.filtered(tool=t).pooled()
              for t in ("funseeker", "ida", "ghidra", "fetch")}
    fs = pooled["funseeker"]

    # Headline: FunSeeker dominates.
    assert fs.precision > 0.98 and fs.recall > 0.98
    for tool in ("ida", "ghidra", "fetch"):
        assert fs.f1 >= pooled[tool].f1

    # IDA: the paper's lowest-recall tool (76.3%). Our FETCH's x86
    # collapse is slightly deeper than the paper's, so assert IDA's
    # band and its ordering against the accurate tools.
    assert pooled["ida"].recall < 0.85
    assert pooled["ida"].recall < pooled["ghidra"].recall
    assert pooled["ida"].recall < fs.recall - 0.1

    # Ghidra: x86 recall below x64 recall (FDE dependence).
    gh32 = report.filtered(tool="ghidra", bits=32).pooled()
    gh64 = report.filtered(tool="ghidra", bits=64).pooled()
    assert gh32.recall < gh64.recall - 0.05

    # FETCH: x86 collapse driven by Clang's missing FDEs.
    fetch32 = report.filtered(tool="fetch", bits=32).pooled()
    fetch64 = report.filtered(tool="fetch", bits=64).pooled()
    assert fetch64.recall > 0.97
    assert fetch32.recall < 0.75, "paper: ~50% x86 recall"
    fetch32_clang = report.filtered(
        tool="fetch", bits=32, compiler="clang").pooled()
    fetch32_gcc = report.filtered(
        tool="fetch", bits=32, compiler="gcc").pooled()
    assert fetch32_clang.recall < fetch32_gcc.recall - 0.3

    # Timing: FunSeeker meaningfully faster than FETCH (paper: 5.1x).
    fs_time = report.filtered(tool="funseeker").mean_time()
    fetch_time = report.filtered(tool="fetch").mean_time()
    assert fetch_time > fs_time * 1.5


def test_error_breakdown(benchmark, corpus, results_dir):
    text, total = benchmark.pedantic(
        lambda: error_breakdown(corpus), rounds=1, iterations=1
    )
    publish(results_dir, "error_breakdown", text)

    assert total.fn_total > 0
    # Paper §V-C: 93.3% of FNs are dead functions, the rest missed tail
    # targets; 100% of FPs reference fragments.
    assert total.fn_dead / total.fn_total > 0.6
    assert total.fp_other == 0
    if total.fp_total:
        assert total.fp_fragment == total.fp_total
