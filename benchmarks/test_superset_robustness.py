"""Future-work bench (§VI): superset disassembly vs data in .text.

The paper flags hand-written assembly with inline data as linear
sweep's blind spot and names superset/probabilistic disassembly as the
remedy. This bench builds a corpus slice whose functions embed data
blobs (seeded with phantom end-branch byte patterns) and compares plain
FunSeeker with the superset-validated RobustFunSeeker.

Claims asserted: plain sweep's precision collapses on data-laden
binaries; the robust front end restores it with no recall cost; both
behave identically on clean binaries.
"""

import random

from benchmarks.conftest import publish
from repro.core.funseeker import FunSeeker
from repro.core.robust import RobustFunSeeker
from repro.eval.metrics import Confusion, score
from repro.synth import CompilerProfile, generate_program, link_program


def _run():
    plain_dirty = Confusion()
    robust_dirty = Confusion()
    plain_clean = Confusion()
    robust_clean = Confusion()
    profile = CompilerProfile("gcc", "O2", 64, True)
    for seed in range(8):
        for dirty in (False, True):
            spec = generate_program("ss", 80, profile, seed=seed)
            if dirty:
                rng = random.Random(seed)
                live = [f for f in spec.functions
                        if not f.is_dead and not f.is_thunk]
                for fn in rng.sample(live, 12):
                    fn.inline_data = rng.randrange(24, 96)
            binary = link_program(spec, profile)
            gt = binary.ground_truth.function_starts
            p = score(gt, FunSeeker.from_bytes(binary.data)
                      .identify().functions)
            r = score(gt, RobustFunSeeker.from_bytes(binary.data)
                      .identify().functions)
            if dirty:
                plain_dirty.add(p)
                robust_dirty.add(r)
            else:
                plain_clean.add(p)
                robust_clean.add(r)
    return plain_clean, robust_clean, plain_dirty, robust_dirty


def test_superset_robustness(benchmark, results_dir):
    plain_clean, robust_clean, plain_dirty, robust_dirty = \
        benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "FUTURE WORK: superset disassembly vs inline data (§VI)",
        f"  clean  plain  P={100 * plain_clean.precision:6.2f} "
        f"R={100 * plain_clean.recall:6.2f}",
        f"  clean  robust P={100 * robust_clean.precision:6.2f} "
        f"R={100 * robust_clean.recall:6.2f}",
        f"  dirty  plain  P={100 * plain_dirty.precision:6.2f} "
        f"R={100 * plain_dirty.recall:6.2f}",
        f"  dirty  robust P={100 * robust_dirty.precision:6.2f} "
        f"R={100 * robust_dirty.recall:6.2f}",
    ]
    publish(results_dir, "superset_robustness", "\n".join(lines))

    # Clean binaries: the front ends agree.
    assert abs(plain_clean.precision - robust_clean.precision) < 0.005
    assert abs(plain_clean.recall - robust_clean.recall) < 0.005
    # Dirty binaries: plain collapses, robust holds.
    assert plain_dirty.precision < 0.85
    assert robust_dirty.precision > 0.95
    assert robust_dirty.recall > 0.95
