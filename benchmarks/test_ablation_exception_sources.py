"""Ablation: where the exception info comes from (paper §IV-C vs FETCH).

FunSeeker reads landing pads out of ``.gcc_except_table`` LSDAs;
eh_frame-centric tools effectively treat FDE ``PC begin`` values as the
only trustworthy entries. This bench compares three policies on the
corpus slice where they differ most — x86 Clang binaries:

- ``lsda``    — FunSeeker's filter (landing pads removed via LSDAs);
- ``nofilter``— no exception filtering at all (config ① + C);
- ``fde-only``— trust eh_frame alone: entries are FDE starts
  (FETCH/Ghidra's information source).

Claims asserted: the LSDA policy keeps both precision and recall; the
FDE-only policy collapses when Clang omits FDEs; skipping the filter
costs precision exactly on the C++ binaries.
"""

from benchmarks.conftest import publish
from repro.baselines.base import fde_starts
from repro.core.funseeker import Config, FunSeeker
from repro.elf.parser import ELFFile
from repro.eval.metrics import Confusion, score


def _run(corpus):
    pooled = {"lsda": Confusion(), "nofilter": Confusion(),
              "fde-only": Confusion()}
    cxx_precision = {"lsda": Confusion(), "nofilter": Confusion()}
    for entry in corpus:
        if entry.profile.bits != 32 or entry.profile.compiler != "clang":
            continue
        elf = ELFFile(entry.stripped)
        gt = entry.binary.ground_truth.function_starts

        full = FunSeeker(elf, Config.FULL).identify()
        raw = FunSeeker(elf, Config.RAW).identify()
        pooled["lsda"].add(score(gt, full.functions))
        nofilter = raw.endbr_all | raw.call_targets
        pooled["nofilter"].add(score(gt, nofilter))
        starts, _ = fde_starts(elf)
        pooled["fde-only"].add(score(gt, starts))

        if full.landing_pads:  # the C++ binaries
            cxx_precision["lsda"].add(score(gt, full.functions))
            cxx_precision["nofilter"].add(score(gt, nofilter))
    return pooled, cxx_precision


def test_exception_source_ablation(benchmark, corpus, results_dir):
    pooled, cxx = benchmark.pedantic(
        lambda: _run(corpus), rounds=1, iterations=1
    )
    lines = ["ABLATION: exception-information sources "
             "(x86 Clang slice; paper §IV-C)"]
    for name, conf in pooled.items():
        lines.append(f"  {name:9s} P={100 * conf.precision:6.2f} "
                     f"R={100 * conf.recall:6.2f}")
    publish(results_dir, "ablation_exception_sources", "\n".join(lines))

    assert pooled["lsda"].recall > 0.95
    assert pooled["lsda"].precision > 0.95
    # eh_frame-only collapses without Clang FDEs (the paper's argument
    # for preferring .gcc_except_table).
    assert pooled["fde-only"].recall < 0.5
    # Skipping the filter costs precision on the C++ binaries.
    if cxx["lsda"].tp:
        assert cxx["nofilter"].precision < cxx["lsda"].precision - 0.02
