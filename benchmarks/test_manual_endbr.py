"""Ablation: the -mmanual-endbr option (paper §VI).

When developers hand-place end-branches, only genuine indirect-branch
targets keep the marker. The paper argues FunSeeker's degradation is
marginal: direct-call targets are still recovered by C, so only some
tail targets and unreachable functions can be lost (~1.24% per Fig. 3).

Claims asserted: recall under manual endbr stays close to the default
build; precision is unaffected.
"""

from benchmarks.conftest import publish
from repro.core.funseeker import FunSeeker
from repro.elf.parser import strip_symbols
from repro.eval.metrics import Confusion, score
from repro.synth import CompilerProfile, generate_program, link_program


def _run():
    default = Confusion()
    manual = Confusion()
    profile = CompilerProfile("gcc", "O2", 64, True)
    for seed in range(12):
        for flag, pooled in ((False, default), (True, manual)):
            spec = generate_program(
                "me", 120, profile, seed=seed, cxx=False,
                manual_endbr=flag,
            )
            binary = link_program(spec, profile)
            result = FunSeeker.from_bytes(
                strip_symbols(binary.data)).identify()
            pooled.add(score(binary.ground_truth.function_starts,
                             result.functions))
    return default, manual


def test_manual_endbr_impact(benchmark, results_dir):
    default, manual = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [
        "ABLATION: -mmanual-endbr (paper §VI)",
        f"  default  P={100 * default.precision:6.2f} "
        f"R={100 * default.recall:6.2f}",
        f"  manual   P={100 * manual.precision:6.2f} "
        f"R={100 * manual.recall:6.2f}",
        f"  recall loss: {100 * (default.recall - manual.recall):.2f} "
        f"points (paper: ~1.24% affected at most)",
    ]
    publish(results_dir, "ablation_manual_endbr", "\n".join(lines))

    assert manual.precision > 0.97, "precision must be unaffected"
    assert manual.recall > default.recall - 0.08, \
        "the paper calls the impact marginal"
    assert manual.recall > 0.9
