"""Benchmark fixtures.

The corpus scale is controlled by ``REPRO_BENCH_SCALE`` (default
``small`` — hundreds of binaries, a few minutes for the full run; set
``tiny`` while iterating). Rendered tables are written to
``benchmarks/results/`` and echoed to stdout.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.synth.corpus import build_corpus

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def corpus():
    return build_corpus(bench_scale())


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, name: str, text: str) -> None:
    """Echo a rendered table and persist it under results/."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
