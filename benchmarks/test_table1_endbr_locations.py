"""Regenerate Table I: distribution of end-branch instruction locations.

Paper claims reproduced here:

- C suites (coreutils/binutils): >99% of end-branches sit at function
  entries; exception share is exactly zero.
- The C++-bearing SPEC suite: a large exception share (paper: 20.4%
  for GCC, 27.9% for Clang) — naive endbr==entry would be wrong there.
- Indirect-return end-branches exist but are rare everywhere.
"""

from benchmarks.conftest import publish
from repro.eval.tables import table1


def test_table1(benchmark, corpus, results_dir):
    text, results = benchmark.pedantic(
        lambda: table1(corpus), rounds=1, iterations=1
    )
    publish(results_dir, "table1", text)

    for compiler in ("gcc", "clang"):
        entry_f, indir_f, exc_f = results[(compiler, "coreutils")]
        assert entry_f > 0.95, "C suite: endbrs are function entries"
        assert exc_f == 0.0, "C suite: no exception endbrs"

        entry_b, _, exc_b = results[(compiler, "binutils")]
        assert entry_b > 0.97
        assert exc_b == 0.0

        entry_s, _, exc_s = results[(compiler, "spec")]
        assert 0.05 < exc_s < 0.45, \
            "SPEC: a material exception share (paper: 20-28%)"
        assert entry_s < entry_b, \
            "SPEC entry share must drop below the C suites'"
